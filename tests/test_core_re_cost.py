"""RE cost engine: the five-way itemization against hand calculations."""

import pytest

from repro.core.chip import Chip
from repro.core.module import Module
from repro.core.package_design import PackageDesign
from repro.core.re_cost import chip_kgd_cost, compute_re_cost
from repro.core.system import System, multichip, soc
from repro.d2d.overhead import FractionOverhead
from repro.wafer.die import DieSpec, die_cost


class TestChipKGD:
    def test_kgd_matches_die_cost(self, simple_chiplet):
        expected = die_cost(
            DieSpec(area=simple_chiplet.area, node=simple_chiplet.node)
        ).total
        assert chip_kgd_cost(simple_chiplet) == pytest.approx(expected)


class TestSoCRE:
    def test_chip_costs_match_die_cost(self, simple_soc):
        re = compute_re_cost(simple_soc)
        die = die_cost(DieSpec(area=200.0, node=simple_soc.chips[0].node))
        assert re.raw_chips == pytest.approx(die.raw)
        assert re.chip_defects == pytest.approx(die.defect)

    def test_chip_detail_attached(self, simple_soc):
        re = compute_re_cost(simple_soc)
        assert len(re.chip_details) == 1
        detail = re.chip_details[0]
        assert detail.count == 1
        assert detail.unit_total == pytest.approx(re.chips_total)

    def test_total_is_sum(self, simple_soc):
        re = compute_re_cost(simple_soc)
        assert re.total == pytest.approx(
            re.raw_chips
            + re.chip_defects
            + re.raw_package
            + re.package_defects
            + re.wasted_kgd
        )


class TestMultichipRE:
    def test_two_instances_double_chip_cost(self, simple_mcm, simple_chiplet):
        re = compute_re_cost(simple_mcm)
        unit = die_cost(
            DieSpec(area=simple_chiplet.area, node=simple_chiplet.node)
        )
        assert re.raw_chips == pytest.approx(2 * unit.raw)
        assert re.chip_defects == pytest.approx(2 * unit.defect)

    def test_packaging_matches_integration(self, simple_mcm, mcm_tech):
        re = compute_re_cost(simple_mcm)
        kgd = re.chips_total
        packaging = simple_mcm.integration.packaging_cost(
            simple_mcm.chip_areas, kgd
        )
        assert re.raw_package == pytest.approx(packaging.raw_package)
        assert re.package_defects == pytest.approx(packaging.package_defects)
        assert re.wasted_kgd == pytest.approx(packaging.wasted_kgd)

    def test_heterogeneous_chips_priced_separately(self, n7, n14, mcm_tech):
        d2d = FractionOverhead(0.10)
        advanced = Chip.of("a", (Module("ma", 150.0, n7),), n7, d2d=d2d)
        mature = Chip.of("b", (Module("mb", 150.0, n14),), n14, d2d=d2d)
        system = multichip("h", [advanced, mature], mcm_tech)
        re = compute_re_cost(system)
        assert len(re.chip_details) == 2
        by_name = {d.chip_name: d for d in re.chip_details}
        # The mature die is cheaper per mm^2.
        assert by_name["b"].unit_total < by_name["a"].unit_total


class TestPackageDesignRE:
    def test_oversized_package_costs_more(self, simple_chiplet, mcm_tech):
        plain = multichip("p", [simple_chiplet], mcm_tech)
        design = PackageDesign.for_chips(
            "big", mcm_tech, [simple_chiplet.area] * 4
        )
        reused = multichip("r", [simple_chiplet], mcm_tech, package=design)
        plain_re = compute_re_cost(plain)
        reused_re = compute_re_cost(reused)
        assert reused_re.raw_package > plain_re.raw_package
        assert reused_re.chips_total == pytest.approx(plain_re.chips_total)

    def test_full_package_equals_plain(self, simple_chiplet, mcm_tech):
        """A design sized for exactly the system's chips changes nothing."""
        design = PackageDesign.for_chips(
            "exact", mcm_tech, [simple_chiplet.area, simple_chiplet.area]
        )
        plain = multichip("p", [simple_chiplet] * 2, mcm_tech)
        reused = multichip("r", [simple_chiplet] * 2, mcm_tech, package=design)
        assert compute_re_cost(reused).total == pytest.approx(
            compute_re_cost(plain).total
        )


class TestCrossTechnology:
    def test_re_ordering_at_common_point(self, n5, soc_pkg):
        """At 800 mm^2 / 5nm the paper's Fig. 4 ordering holds:
        MCM < InFO < SoC, and 2.5D < SoC."""
        from repro.explore.partition import partition_monolith, soc_reference
        from repro.packaging import info, interposer_25d, mcm

        soc_re = compute_re_cost(soc_reference(800.0, n5)).total
        mcm_re = compute_re_cost(
            partition_monolith(800.0, n5, 2, mcm())
        ).total
        info_re = compute_re_cost(
            partition_monolith(800.0, n5, 2, info())
        ).total
        interposer_re = compute_re_cost(
            partition_monolith(800.0, n5, 2, interposer_25d())
        ).total
        assert mcm_re < info_re < soc_re
        assert interposer_re < soc_re
