"""SCMS scheme structure and economics (Section 5.1)."""

import pytest

from repro.core.re_cost import compute_re_cost
from repro.errors import InvalidParameterError
from repro.packaging.interposer import interposer_25d
from repro.packaging.mcm import mcm
from repro.process.catalog import get_node
from repro.reuse.scms import SCMSConfig, build_scms


@pytest.fixture(scope="module")
def study():
    return build_scms(SCMSConfig(), mcm())


class TestStructure:
    def test_three_portfolios_of_three_grades(self, study):
        assert len(study.soc) == 3
        assert len(study.chiplet) == 3
        assert len(study.chiplet_package_reused) == 3

    def test_single_chiplet_design_shared(self, study):
        chips = {
            id(chip)
            for system in study.chiplet.systems
            for chip, _n in system.unique_chips()
        }
        assert len(chips) == 1

    def test_soc_systems_share_the_module(self, study):
        modules = {
            id(module)
            for system in study.soc.systems
            for module in system.unique_modules()
        }
        assert len(modules) == 1

    def test_grade_multiplicities(self, study):
        counts = [len(system.chips) for system in study.chiplet.systems]
        assert counts == [1, 2, 4]

    def test_soc_systems_monolithic(self, study):
        for system in study.soc.systems:
            assert len(system.chips) == 1
            assert not system.chips[0].is_chiplet

    def test_reused_portfolio_shares_one_package(self, study):
        designs = {
            id(system.package)
            for system in study.chiplet_package_reused.systems
        }
        assert len(designs) == 1
        assert None not in designs


class TestEconomics:
    def test_chiplet_chip_nre_equal_across_grades(self, study):
        shares = [
            study.chiplet.amortized_nre(system).chips
            for system in study.chiplet.systems
        ]
        assert shares[0] == pytest.approx(shares[1])
        assert shares[1] == pytest.approx(shares[2])

    def test_soc_chip_nre_grows_with_grade(self, study):
        shares = [
            study.soc.amortized_nre(system).chips
            for system in study.soc.systems
        ]
        assert shares == sorted(shares)
        assert shares[-1] > shares[0]

    def test_package_reuse_cuts_large_grade_package_nre(self, study):
        plain = study.chiplet.amortized_nre(study.chiplet.systems[-1])
        reused = study.chiplet_package_reused.amortized_nre(
            study.chiplet_package_reused.systems[-1]
        )
        # Shared across 3 grades -> exactly one third.
        assert reused.packages == pytest.approx(plain.packages / 3.0)

    def test_package_reuse_raises_small_grade_re(self, study):
        plain = compute_re_cost(study.chiplet.systems[0]).total
        reused = compute_re_cost(
            study.chiplet_package_reused.systems[0]
        ).total
        assert reused > plain

    def test_package_reuse_does_not_change_largest_re(self, study):
        plain = compute_re_cost(study.chiplet.systems[-1]).total
        reused = compute_re_cost(
            study.chiplet_package_reused.systems[-1]
        ).total
        assert reused == pytest.approx(plain)


class TestInterposerVariant:
    def test_25d_package_reuse_uneconomic(self):
        """The paper: 'package reuse is uneconomic for high-cost 2.5D
        integrations'."""
        study = build_scms(SCMSConfig(), interposer_25d())
        plain_avg = study.chiplet.average_cost()
        reused_avg = study.chiplet_package_reused.average_cost()
        assert reused_avg > plain_avg

    def test_mcm_package_reuse_closer_call(self):
        """For MCM the two options are within ~15% (the paper: 'depends
        on which accounts for a more significant proportion')."""
        study = build_scms(SCMSConfig(), mcm())
        plain_avg = study.chiplet.average_cost()
        reused_avg = study.chiplet_package_reused.average_cost()
        assert abs(reused_avg - plain_avg) / plain_avg < 0.15


class TestConfig:
    def test_empty_counts_rejected(self):
        with pytest.raises(InvalidParameterError):
            SCMSConfig(counts=())

    def test_zero_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            SCMSConfig(counts=(0, 2))

    def test_custom_node(self):
        config = SCMSConfig(node=get_node("5nm"), counts=(1, 2))
        study = build_scms(config, mcm())
        assert study.grades() == (1, 2)
        assert study.chiplet.systems[0].chips[0].node.name == "5nm"
