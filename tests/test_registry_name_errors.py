"""Registry-name resolution across every study kind: unknown
``yield_model`` / ``wafer_geometry`` names raise a named ConfigError
listing the available entries, and known names actually reprice."""

import pytest

from repro.errors import ConfigError
from repro.scenario import ScenarioRunner, scenario_from_dict


def _doc(study: dict) -> dict:
    return {
        "scenario": "errors",
        "yield_models": {"p97": {"model": "poisson", "gross_factor": 0.97}},
        "wafer_geometries": {"prod": {"base": "300mm", "edge_exclusion": 3.0}},
        "studies": [study],
    }


SYSTEMS_DOCUMENT = {
    "modules": {"m0": {"name": "core", "area": 150.0, "node": "7nm"}},
    "chips": {
        "c0": {"name": "ccd", "modules": ["m0"], "node": "7nm",
               "d2d_fraction": 0.1}
    },
    "packages": {},
    "systems": [
        {"name": "dual", "chips": ["c0", "c0"], "integration": "mcm",
         "quantity": 500000.0}
    ],
}


def _study(kind: str, **overrides) -> dict:
    base = {
        "systems": {"kind": "systems", "name": "sys",
                    "document": SYSTEMS_DOCUMENT},
        "montecarlo": {"kind": "montecarlo", "name": "mc",
                       "module_area": 300.0, "node": "7nm", "draws": 20},
        "pareto": {"kind": "pareto", "name": "pf", "module_area": 400.0,
                   "node": "7nm", "quantity": 1e6,
                   "chiplet_counts": [2, 3]},
        "sensitivity": {"kind": "sensitivity", "name": "sens",
                        "module_area": 300.0, "node": "7nm",
                        "parameters": ["defect_density"]},
        "reuse": {"kind": "reuse", "name": "ru", "scheme": "scms",
                  "params": {"module_area": 150.0, "node": "7nm",
                             "counts": [1, 2], "quantity": 5e5}},
        "partition_sweep": {"kind": "partition_sweep", "name": "ps",
                            "module_area": 400.0, "node": "7nm",
                            "technology": "mcm",
                            "chiplet_counts": [1, 2]},
        "partition_grid": {"kind": "partition_grid", "name": "pg",
                           "module_areas": [200.0, 400.0],
                           "chiplet_counts": [1, 2], "node": "7nm",
                           "technology": "mcm"},
        "search": {"kind": "search", "name": "ds",
                   "module_areas": [600.0], "nodes": ["7nm", "14nm"],
                   "technologies": ["mcm"], "chiplet_counts": [2, 3],
                   "quantity": 5e5, "top_k": 3},
    }[kind]
    return {**base, **overrides}


ALL_KINDS = ("systems", "montecarlo", "pareto", "sensitivity", "reuse",
             "partition_sweep", "partition_grid", "search")


class TestUnknownNames:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_unknown_yield_model_lists_available(self, kind):
        spec = scenario_from_dict(_doc(_study(kind, yield_model="nope")))
        with pytest.raises(ConfigError) as excinfo:
            ScenarioRunner().run(spec)
        message = str(excinfo.value)
        assert spec.studies[0].name in message
        assert "unknown yield model 'nope'" in message
        # The error lists what *is* available: built-in families plus
        # the scenario-scoped entry.
        assert "negative-binomial" in message
        assert "p97" in message

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_unknown_wafer_geometry_lists_available(self, kind):
        spec = scenario_from_dict(_doc(_study(kind, wafer_geometry="nope")))
        with pytest.raises(ConfigError) as excinfo:
            ScenarioRunner().run(spec)
        message = str(excinfo.value)
        assert spec.studies[0].name in message
        assert "unknown wafer geometry 'nope'" in message
        assert "300mm" in message
        assert "prod" in message


class TestKnownNamesReprice:
    def _run(self, study: dict):
        runner = ScenarioRunner()
        return runner.run(scenario_from_dict(_doc(study))).results[0]

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_named_model_changes_pricing(self, kind):
        base = self._run(_study(kind))
        priced = self._run(_study(kind, yield_model="p97",
                                  wafer_geometry="prod"))
        assert base.rows != priced.rows

    def test_montecarlo_fast_with_named_model_matches_naive(self):
        """The closed-form fast path accepts registry names and stays
        draw-for-draw identical to the naive sampler under them."""
        fast = self._run(_study("montecarlo", yield_model="p97",
                                wafer_geometry="prod", method="fast"))
        naive = self._run(_study("montecarlo", yield_model="p97",
                                 wafer_geometry="prod", method="naive"))
        assert fast.data.samples == naive.data.samples
        assert fast.rows == naive.rows

    def test_montecarlo_named_model_keeps_determinism(self):
        one = self._run(_study("montecarlo", yield_model="p97"))
        two = self._run(_study("montecarlo", yield_model="p97"))
        assert one.data.samples == two.data.samples
