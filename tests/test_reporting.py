"""Reporting layer: tables, series, ASCII charts."""

import pytest

from repro.errors import InvalidParameterError
from repro.reporting.ascii_plot import bar_chart, line_chart, stacked_bar_chart
from repro.reporting.series import FigureData, Series
from repro.reporting.table import Table


class TestTable:
    def test_render_aligns_columns(self):
        table = Table(["name", "value"], title="t")
        table.add_row(["a", 1.0])
        table.add_row(["long-name", 123.456])
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "t"
        assert "name" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equal width

    def test_precision(self):
        table = Table(["x"], precision=1)
        table.add_row([1.25])
        assert "1.2" in table.render() or "1.3" in table.render()

    def test_bool_formatting(self):
        table = Table(["flag"])
        table.add_row([True])
        assert "yes" in table.render()

    def test_row_width_mismatch_rejected(self):
        table = Table(["a", "b"])
        with pytest.raises(InvalidParameterError):
            table.add_row([1])

    def test_empty_headers_rejected(self):
        with pytest.raises(InvalidParameterError):
            Table([])


class TestSeries:
    def test_figure_data_validates_lengths(self):
        with pytest.raises(InvalidParameterError):
            FigureData(
                title="t",
                x_label="x",
                xs=(1, 2, 3),
                series=(Series.of("s", [1.0, 2.0]),),
            )

    def test_get_by_name(self):
        figure = FigureData(
            title="t",
            x_label="x",
            xs=(1, 2),
            series=(Series.of("a", [1.0, 2.0]), Series.of("b", [3.0, 4.0])),
        )
        assert figure.get("b").ys == (3.0, 4.0)
        with pytest.raises(KeyError):
            figure.get("c")
        assert figure.names() == ["a", "b"]

    def test_csv_export(self):
        figure = FigureData(
            title="t",
            x_label="area",
            xs=(100, 200),
            series=(Series.of("yield", [0.9, 0.8]),),
        )
        csv = figure.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "area,yield"
        assert lines[1] == "100,0.9"

    def test_write_csv(self, tmp_path):
        figure = FigureData(
            title="t", x_label="x", xs=(1,), series=(Series.of("s", [2.0]),)
        )
        path = tmp_path / "out.csv"
        figure.write_csv(str(path))
        assert path.read_text().startswith("x,s")

    def test_empty_series_rejected(self):
        with pytest.raises(InvalidParameterError):
            Series.of("s", [])


class TestAsciiPlots:
    def test_bar_chart_scales_to_max(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_bar_chart_validation(self):
        with pytest.raises(InvalidParameterError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(InvalidParameterError):
            bar_chart(["a"], [-1.0])
        with pytest.raises(InvalidParameterError):
            bar_chart([], [])

    def test_stacked_bar_chart_legend_and_totals(self):
        chart = stacked_bar_chart(
            ["x"], {"raw": [1.0], "defects": [0.5]}, width=30
        )
        assert "legend:" in chart
        assert "1.500" in chart

    def test_stacked_bar_chart_validation(self):
        with pytest.raises(InvalidParameterError):
            stacked_bar_chart(["x"], {})
        with pytest.raises(InvalidParameterError):
            stacked_bar_chart(["x"], {"a": [1.0, 2.0]})

    def test_line_chart_bounds(self):
        chart = line_chart(
            [0.0, 1.0, 2.0],
            {"y": [0.0, 1.0, 4.0]},
            height=8,
            width=20,
        )
        assert "y: [0, 4]" in chart
        assert "x: [0, 2]" in chart

    def test_line_chart_validation(self):
        with pytest.raises(InvalidParameterError):
            line_chart([], {"y": []})
        with pytest.raises(InvalidParameterError):
            line_chart([1.0], {})
