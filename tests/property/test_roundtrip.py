"""JSON round-trips: spec -> json -> spec -> identical results.

Scenario documents are the repo's data-not-code interface; a lossy
serializer silently changes what a committed JSON file *means*.  These
properties hold that a round-tripped document is equal as a value and —
for executable studies — produces bit-identical results.
"""

import json

from hypothesis import given

from checks import assert_sequences_equal
from repro.scenario.runner import ScenarioRunner
from repro.scenario.spec import (
    ScenarioSpec,
    scenario_from_dict,
    scenario_to_dict,
    study_from_dict,
    study_to_dict,
)
from strategies import montecarlo_studies, scenario_specs, search_studies


def _through_json(spec: ScenarioSpec) -> ScenarioSpec:
    return scenario_from_dict(json.loads(json.dumps(scenario_to_dict(spec))))


@given(spec=scenario_specs())
def test_scenario_spec_round_trips_as_value(spec):
    assert _through_json(spec) == spec


@given(spec=scenario_specs())
def test_round_trip_is_idempotent(spec):
    once = _through_json(spec)
    assert _through_json(once) == once


@given(study=montecarlo_studies())
def test_montecarlo_study_round_trips(study):
    assert study_from_dict(study_to_dict(study)) == study


@given(study=search_studies())
def test_search_study_round_trips(study):
    recovered = study_from_dict(study_to_dict(study))
    assert recovered == study
    assert recovered.space() == study.space()


@given(study=montecarlo_studies())
def test_round_tripped_scenario_runs_identically(study):
    spec = ScenarioSpec(name="roundtrip", studies=(study,))
    original = ScenarioRunner().run(spec)
    recovered = ScenarioRunner().run(_through_json(spec))
    samples = original.result(study.name).data.samples
    recovered_samples = recovered.result(study.name).data.samples
    assert_sequences_equal(
        "scenario round trip", "mc_samples", samples, recovered_samples
    )
