"""Structured comparison helpers for engine parity assertions.

Hypothesis reports the minimal counterexample, but a bare
``assert a == b`` leaves *what* diverged to archaeology.  These helpers
name the component (which engine path), the metric, the index and the
observed relative error in every failure message, so a shrunk
counterexample is directly actionable.
"""

import math


def rel_err(fast: float, exact: float) -> float:
    """|fast - exact| / max(|exact|, 1) — stable near zero."""
    return abs(fast - exact) / max(abs(exact), 1.0)


def max_rel_err(fast_values, exact_values) -> float:
    """Largest elementwise :func:`rel_err` across two sequences."""
    return max(
        (rel_err(f, e) for f, e in zip(fast_values, exact_values)),
        default=0.0,
    )


def _diff_message(
    component: str,
    metric: str,
    fast: float,
    exact: float,
    index: "int | None" = None,
    tol: "float | None" = None,
) -> str:
    where = f" at index {index}" if index is not None else ""
    bound = f" (tol {tol:.1e})" if tol is not None else " (expected exact)"
    return (
        f"{component}: metric {metric!r} diverges{where}: "
        f"fast={fast!r} exact={exact!r} rel_err={rel_err(fast, exact):.3e}"
        f"{bound}"
    )


def assert_bit_equal(component: str, metric: str, fast, exact) -> None:
    """Bit-parity assertion on one scalar metric."""
    assert fast == exact, _diff_message(component, metric, fast, exact)


def assert_sequences_equal(component: str, metric: str, fast, exact) -> None:
    """Bit-parity assertion over aligned sequences."""
    fast, exact = list(fast), list(exact)
    assert len(fast) == len(exact), (
        f"{component}: metric {metric!r} length mismatch: "
        f"fast has {len(fast)} entries, exact has {len(exact)}"
    )
    for index, (f, e) in enumerate(zip(fast, exact)):
        assert f == e, _diff_message(component, metric, f, e, index=index)


def assert_close(
    component: str, metric: str, fast: float, exact: float, tol: float
) -> None:
    """Bounded-relative-error assertion on one scalar metric."""
    assert math.isfinite(fast), (
        f"{component}: metric {metric!r} is not finite: fast={fast!r}"
    )
    assert rel_err(fast, exact) <= tol, _diff_message(
        component, metric, fast, exact, tol=tol
    )


def assert_sequences_close(
    component: str, metric: str, fast, exact, tol: float
) -> None:
    """Bounded-relative-error assertion over aligned sequences."""
    fast, exact = list(fast), list(exact)
    assert len(fast) == len(exact), (
        f"{component}: metric {metric!r} length mismatch: "
        f"fast has {len(fast)} entries, exact has {len(exact)}"
    )
    for index, (f, e) in enumerate(zip(fast, exact)):
        assert math.isfinite(f), (
            f"{component}: metric {metric!r} not finite at index {index}: "
            f"fast={f!r}"
        )
        assert rel_err(f, e) <= tol, _diff_message(
            component, metric, f, e, index=index, tol=tol
        )


def assert_frontier_preserved(
    component: str,
    exact_result,
    fast_result,
    eps: float,
) -> None:
    """Frontier membership preserved up to tolerance ties.

    A candidate may legitimately enter or leave the frontier when two
    designs tie within the fast tier's error bound; what must *never*
    happen is a symmetric-difference member that is strongly dominated
    (some other candidate beats it by more than ``eps`` relative on
    every objective) under the tier that kept it out.  O(n^2) over the
    small generated spaces.
    """
    exact_by_index = {c.index: c for c in exact_result.frontier}
    fast_by_index = {c.index: c for c in fast_result.frontier}
    objectives = exact_result.objectives

    def strongly_dominated(candidate, others) -> "object | None":
        vector = candidate.objective_vector(objectives)
        for other in others:
            if other.index == candidate.index:
                continue
            other_vector = other.objective_vector(objectives)
            if all(
                o <= v - eps * max(abs(v), 1.0)
                for o, v in zip(other_vector, vector)
            ):
                return other
        return None

    for index in exact_by_index.keys() - fast_by_index.keys():
        dominator = strongly_dominated(
            exact_by_index[index], fast_result.frontier
        )
        assert dominator is None, (
            f"{component}: candidate #{index} is on the exact frontier but "
            f"strongly dominated (eps={eps:.1e}) by candidate "
            f"#{dominator.index} in the fast result — more than a "
            "tolerance tie"
        )
    for index in fast_by_index.keys() - exact_by_index.keys():
        dominator = strongly_dominated(
            fast_by_index[index], exact_result.frontier
        )
        assert dominator is None, (
            f"{component}: candidate #{index} is on the fast frontier but "
            f"strongly dominated (eps={eps:.1e}) by candidate "
            f"#{dominator.index} in the exact result — more than a "
            "tolerance tie"
        )
