"""Hypothesis profiles for the property suite.

Two execution budgets, selected via the ``HYPOTHESIS_PROFILE``
environment variable (the CI workflow exports ``HYPOTHESIS_PROFILE=ci``;
local runs default to ``ci`` too, so the suite is always bounded):

* ``ci``  — capped example counts, derandomized (no flaky shrink
  ordering between runs), no deadline (shared runners jitter);
* ``dev`` — a larger randomized budget for local exploration.

Individual tests may raise their own budget with an explicit
``@settings(max_examples=...)`` — the fast-tier relative-error and
frontier-preservation properties pin 200 examples per path regardless
of profile, per the acceptance bar.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    max_examples=25,
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
