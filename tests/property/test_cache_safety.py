"""Cache-staleness safety on arbitrary generated inputs.

The engine's throughput comes from layered memoization — identity-keyed
hot caches, value-keyed die-cost LRUs, per-(portfolio, override)
decompositions.  The invariant: *no mutation of inputs, overrides or
registries may ever surface a stale memoized cost.*  Every property
warms a cache, changes something, and compares against a freshly
computed oracle.
"""

from hypothesis import given
from hypothesis import strategies as st

from checks import assert_bit_equal, assert_sequences_equal
from repro.config import ConfigRegistries
from repro.core.re_cost import compute_re_cost
from repro.engine.costengine import CostEngine
from repro.engine.fastmc import sample_re_costs
from repro.engine.fastportfolio import PortfolioDecomposition, PortfolioEngine
from repro.explore.montecarlo import monte_carlo_cost_naive
from repro.explore.partition import partition_monolith
from repro.packaging.mcm import mcm
from repro.process.catalog import get_node
from strategies import catalog_node_names, module_areas, portfolios, systems


@given(first=systems(), second=systems())
def test_warm_cache_never_serves_other_systems_cost(first, second):
    engine = CostEngine()
    engine.evaluate_re(first)  # warm
    engine.evaluate_re(second)  # may collide in the hot cache
    again = engine.evaluate_re(first)
    assert_bit_equal(
        "CostEngine warm cache", "re_total",
        again.total, compute_re_cost(first).total,
    )


@given(area=module_areas, node=catalog_node_names,
       count=st.integers(min_value=2, max_value=4),
       factor=st.floats(min_value=0.2, max_value=5.0))
def test_node_mutation_reprices(area, node, count, factor):
    """An evolved node (new defect density) must never reuse the old
    node's memoized die cost."""
    base = get_node(node)
    engine = CostEngine()
    original = partition_monolith(area, base, count, mcm())
    engine.evaluate_re(original)  # warm the die-cost caches
    evolved = base.with_defect_density(base.defect_density * factor)
    mutated = partition_monolith(area, evolved, count, mcm())
    warm = engine.evaluate_re(mutated)
    assert_bit_equal(
        "CostEngine node mutation", "re_total",
        warm.total, compute_re_cost(mutated).total,
    )


@given(system=systems())
def test_die_cost_override_switching_never_stale(system):
    """fn1 -> fn2 -> None on the same warmed engine, each correct."""
    registries = ConfigRegistries()
    fn1 = registries.die_cost_fn("poisson", "")
    fn2 = registries.die_cost_fn("murphy", "450mm")
    engine = CostEngine()
    for override in (fn1, fn2, None, fn1):
        warm = engine.evaluate_re(system, die_cost_fn=override)
        oracle = compute_re_cost(system, die_cost_fn=override)
        assert_bit_equal(
            "CostEngine override switching",
            f"re_total[{'default' if override is None else 'override'}]",
            warm.total, oracle.total,
        )


@given(portfolio=portfolios())
def test_portfolio_decomposition_cache_keyed_by_override(portfolio):
    registries = ConfigRegistries()
    fn1 = registries.die_cost_fn("poisson", "")
    engine = PortfolioEngine(CostEngine())
    for override in (None, fn1, None):
        batched = engine.evaluate(portfolio, die_cost_fn=override)
        fresh = PortfolioDecomposition(
            portfolio, CostEngine(), die_cost_fn=override
        ).evaluate()
        assert_sequences_equal(
            "PortfolioEngine override switching", "totals",
            batched.totals(), fresh.totals(),
        )


@given(system=systems(), draws=st.integers(min_value=1, max_value=5),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_mc_override_then_default_never_stale(system, draws, seed):
    """A die-cost override on one MC call must not leak into the next."""
    override = ConfigRegistries().die_cost_fn("poisson", "")
    sample_re_costs(system, draws=draws, seed=seed, die_cost_fn=override)
    plain = sample_re_costs(system, draws=draws, seed=seed)
    naive = monte_carlo_cost_naive(system, draws=draws, seed=seed).samples
    assert_sequences_equal(
        "fastmc override isolation", "re_total", plain, naive
    )


@given(system=systems())
def test_clear_caches_preserves_results(system):
    engine = CostEngine()
    before = engine.evaluate_re(system)
    engine.clear_caches()
    after = engine.evaluate_re(system)
    assert_bit_equal(
        "CostEngine.clear_caches", "re_total", after.total, before.total
    )
