"""Bounded-relative-error properties gating ``precision="fast"``.

The fast tier trades the bit-parity contract for reassociated numpy
reductions and (``fast32``) float32 column batches; its correctness is
*defined* by the bounds these properties enforce on generated inputs
(200 examples per path, regardless of the Hypothesis profile):

* ``fast``   within 1e-9 relative of the exact tier everywhere;
* ``fast32`` within 1e-3 relative (float32 has ~7 significant digits);
* search frontier membership preserved up to tolerance ties;
* without numpy, a fast ``precision`` degrades to the exact scalar
  path instead of erroring (bit-identical results).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from checks import (
    assert_bit_equal,
    assert_frontier_preserved,
    assert_sequences_close,
    assert_sequences_equal,
)
from repro.engine import fastmc, fastportfolio, fasttier
from repro.engine.costengine import CostEngine
from repro.engine.fastmc import sample_re_costs
from repro.engine.fastportfolio import PortfolioEngine
from repro.errors import InvalidParameterError
from repro.explore.montecarlo import monte_carlo_cost
from repro.search.engine import run_search
from strategies import design_spaces, portfolios, systems

#: (precision, relative-error tolerance, frontier-tie epsilon).
TIERS = (("fast", 1e-9, 1e-6), ("fast32", 1e-3, 1e-3))

_SEARCH_METRICS = ("re", "nre", "total", "silicon_area", "footprint")


@settings(max_examples=200)
@given(system=systems(), draws=st.integers(min_value=1, max_value=6),
       sigma=st.floats(min_value=0.01, max_value=0.4),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_fastmc_fast_tier_within_bounds(system, draws, sigma, seed):
    exact = sample_re_costs(system, draws=draws, sigma=sigma, seed=seed)
    for precision, tol, _eps in TIERS:
        fast = sample_re_costs(
            system, draws=draws, sigma=sigma, seed=seed, precision=precision
        )
        assert_sequences_close(
            f"fastmc[{precision}]", "re_total", fast, exact, tol
        )


@settings(max_examples=200)
@given(space=design_spaces())
def test_search_fast_tier_within_bounds(space):
    exact = run_search(space)
    for precision, tol, eps in TIERS:
        fast = run_search(space, precision=precision)
        assert_bit_equal(
            f"run_search[{precision}]", "n_candidates",
            fast.n_candidates, exact.n_candidates,
        )
        assert_frontier_preserved(
            f"run_search[{precision}]", exact, fast, eps
        )
        shared = {c.index: c for c in exact.frontier}
        for candidate in fast.frontier:
            match = shared.get(candidate.index)
            if match is None:
                continue  # tolerance tie, already vetted above
            assert_sequences_close(
                f"run_search[{precision}]",
                f"frontier_metrics[#{candidate.index}]",
                [getattr(candidate, metric) for metric in _SEARCH_METRICS],
                [getattr(match, metric) for metric in _SEARCH_METRICS],
                tol,
            )


@settings(max_examples=200)
@given(portfolio=portfolios(),
       scales=st.lists(st.floats(min_value=0.1, max_value=10.0),
                       min_size=1, max_size=3))
def test_portfolio_fast_tier_within_bounds(portfolio, scales):
    engine = PortfolioEngine(CostEngine())
    exact = engine.volume_solve(portfolio, scales)
    for precision, tol, _eps in TIERS:
        fast = engine.volume_solve(portfolio, scales, precision=precision)
        for index in range(len(exact.scales)):
            assert_sequences_close(
                f"volume_solve[{precision}]", f"totals[{index}]",
                fast.point_totals(index), exact.point_totals(index), tol,
            )
            assert_sequences_close(
                f"volume_solve[{precision}]", f"average[{index}]",
                [fast.point_average(index)], [exact.point_average(index)],
                tol,
            )


@given(system=systems(), precision=st.sampled_from(("fast", "fast32")))
@settings(max_examples=50)
def test_fast_tier_degrades_gracefully_without_numpy(system, precision):
    """No numpy -> the exact scalar path, never an error (satellite:
    the no-numpy CI job re-asserts this against a real numpy-less
    interpreter)."""
    exact = sample_re_costs(system, draws=4, seed=3)
    saved = fastmc._np, fasttier._np
    fastmc._np = fasttier._np = None
    try:
        degraded = sample_re_costs(
            system, draws=4, seed=3, precision=precision
        )
    finally:
        fastmc._np, fasttier._np = saved
    assert_sequences_equal(
        f"fastmc[{precision}] no-numpy fallback", "re_total", degraded, exact
    )


@given(portfolio=portfolios())
@settings(max_examples=25)
def test_portfolio_fast_tier_degrades_gracefully_without_numpy(portfolio):
    engine = PortfolioEngine(CostEngine())
    exact = engine.volume_solve(portfolio, (1.0, 2.0))
    saved = fastportfolio._np, fasttier._np
    fastportfolio._np = fasttier._np = None
    try:
        degraded = engine.volume_solve(
            portfolio, (1.0, 2.0), precision="fast"
        )
    finally:
        fastportfolio._np, fasttier._np = saved
    for index in range(2):
        assert_sequences_equal(
            "volume_solve[fast] no-numpy fallback", f"totals[{index}]",
            degraded.point_totals(index), exact.point_totals(index),
        )


def test_invalid_precision_rejected_everywhere():
    with pytest.raises(InvalidParameterError):
        fasttier.validate_precision("float16")
    with pytest.raises(InvalidParameterError):
        CostEngine(precision="quick")
    with pytest.raises(InvalidParameterError):
        PortfolioEngine(precision="quick")


@given(system=systems())
@settings(max_examples=10)
def test_monte_carlo_cost_rejects_invalid_precision(system):
    with pytest.raises(InvalidParameterError):
        monte_carlo_cost(system, draws=2, precision="double")
