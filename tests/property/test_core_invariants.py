"""Core model invariants (migrated from ``tests/test_properties.py``).

The original ad-hoc inline strategies now come from the shared
``strategies`` module; the invariant families (yield bounds and
monotonicity, wafer geometry, area scaling, cost-breakdown algebra,
assembly-flow ordering, FSMC combinatorics, model-level conservation
laws) are unchanged — no lost coverage.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.breakdown import NRECost, RECost
from repro.core.module import Module
from repro.core.re_cost import compute_re_cost
from repro.core.system import multichip
from repro.core.system import chiplet as make_chiplet
from repro.d2d.overhead import FractionOverhead
from repro.explore.partition import partition_monolith
from repro.packaging.assembly import (
    carrier_chip_first_cost,
    carrier_chip_last_cost,
    direct_attach_cost,
)
from repro.packaging.mcm import mcm
from repro.process.catalog import get_node
from repro.process.scaling import area_scale_factor
from repro.reuse.fsmc import collocation_count, enumerate_collocations
from repro.reuse.portfolio import Portfolio
from repro.wafer.geometry import WaferGeometry
from repro.yieldmodel.models import NegativeBinomialYield
from strategies import areas, catalog_node_names, clusters, densities


class TestYieldProperties:
    @given(density=densities, cluster=clusters, area=areas)
    def test_yield_in_unit_interval(self, density, cluster, area):
        y = NegativeBinomialYield(density, cluster).die_yield(area)
        assert 0.0 < y <= 1.0

    @given(density=densities, cluster=clusters,
           a=areas, b=areas)
    def test_yield_monotone_in_area(self, density, cluster, a, b):
        model = NegativeBinomialYield(density, cluster)
        low, high = sorted((a, b))
        assert model.die_yield(high) <= model.die_yield(low) + 1e-12

    @given(cluster=clusters, area=areas, d1=densities, d2=densities)
    def test_yield_monotone_in_density(self, cluster, area, d1, d2):
        low, high = sorted((d1, d2))
        assert NegativeBinomialYield(high, cluster).die_yield(
            area
        ) <= NegativeBinomialYield(low, cluster).die_yield(area) + 1e-12

    @given(density=st.floats(min_value=0.01, max_value=0.5),
           area=areas,
           c1=st.floats(min_value=0.5, max_value=50.0),
           c2=st.floats(min_value=0.5, max_value=50.0))
    def test_clustering_helps_yield(self, density, area, c1, c2):
        """Smaller c (more clustering) never hurts yield."""
        low, high = sorted((c1, c2))
        y_low_c = NegativeBinomialYield(density, low).die_yield(area)
        y_high_c = NegativeBinomialYield(density, high).die_yield(area)
        assert y_low_c >= y_high_c - 1e-12


class TestGeometryProperties:
    @given(area=st.floats(min_value=1.0, max_value=5000.0))
    def test_dpw_bounded_by_area_ratio(self, area):
        geometry = WaferGeometry()
        count = geometry.dies_per_wafer(area)
        assert 0 <= count <= geometry.wafer_area / area

    @given(a=st.floats(min_value=1.0, max_value=5000.0),
           b=st.floats(min_value=1.0, max_value=5000.0))
    def test_dpw_monotone(self, a, b):
        geometry = WaferGeometry()
        low, high = sorted((a, b))
        assert geometry.dies_per_wafer(high) <= geometry.dies_per_wafer(low)

    @given(area=st.floats(min_value=1.0, max_value=2000.0),
           scribe=st.floats(min_value=0.0, max_value=1.0))
    def test_scribe_never_increases_count(self, area, scribe):
        plain = WaferGeometry().dies_per_wafer(area)
        scribed = WaferGeometry(scribe_width=scribe).dies_per_wafer(area)
        assert scribed <= plain


class TestScalingProperties:
    @given(fraction=st.floats(min_value=0.0, max_value=1.0))
    def test_scale_factor_round_trip(self, fraction):
        n14, n7 = get_node("14nm"), get_node("7nm")
        forward = area_scale_factor(n14, n7, fraction)
        assert forward > 0
        if fraction == 1.0:
            assert forward * area_scale_factor(n7, n14, 1.0) == pytest.approx(
                1.0
            )

    @given(fraction=st.floats(min_value=0.0, max_value=1.0))
    def test_factor_between_extremes(self, fraction):
        n14, n7 = get_node("14nm"), get_node("7nm")
        full = area_scale_factor(n14, n7, 1.0)
        factor = area_scale_factor(n14, n7, fraction)
        low, high = sorted((full, 1.0))
        assert low - 1e-12 <= factor <= high + 1e-12


class TestBreakdownProperties:
    re_values = st.tuples(*[st.floats(min_value=0.0, max_value=1e6)] * 5)

    @given(values=re_values, factor=st.floats(min_value=0.001, max_value=1e3))
    def test_scaling_linear(self, values, factor):
        re = RECost(*values)
        assert re.scaled(factor).total == pytest.approx(re.total * factor)

    @given(a=re_values, b=re_values)
    def test_addition_componentwise(self, a, b):
        total = RECost(*a) + RECost(*b)
        assert total.total == pytest.approx(RECost(*a).total + RECost(*b).total)

    @given(values=re_values)
    def test_groups_partition_total(self, values):
        re = RECost(*values)
        assert re.chips_total + re.packaging_total == pytest.approx(re.total)

    @given(values=st.tuples(*[st.floats(min_value=0.0, max_value=1e6)] * 4))
    def test_nre_total(self, values):
        nre = NRECost(*values)
        assert nre.total == pytest.approx(sum(values))


class TestAssemblyProperties:
    yields = st.floats(min_value=0.5, max_value=1.0)

    @given(y1=yields, y2=yields, y3=yields,
           n=st.integers(min_value=1, max_value=8),
           kgd=st.floats(min_value=0.0, max_value=1e4))
    def test_chip_first_never_cheaper(self, y1, y2, y3, n, kgd):
        kwargs = dict(
            carrier_cost=100.0,
            carrier_yield=y1,
            substrate_cost=40.0,
            assembly_fee=10.0,
            n_chips=n,
            chip_attach_yield=y2,
            carrier_attach_yield=y3,
            kgd_cost=kgd,
        )
        first = carrier_chip_first_cost(**kwargs)
        last = carrier_chip_last_cost(**kwargs)
        assert first.total >= last.total - 1e-9

    @given(y2=yields, y3=yields,
           n=st.integers(min_value=1, max_value=8),
           kgd=st.floats(min_value=0.0, max_value=1e4))
    def test_direct_attach_components_nonnegative(self, y2, y3, n, kgd):
        cost = direct_attach_cost(50.0, 10.0, n, y2, y3, kgd)
        assert cost.raw_package >= 0
        assert cost.package_defects >= 0
        assert cost.wasted_kgd >= 0

    @given(kgd=st.floats(min_value=0.0, max_value=1e4),
           n1=st.integers(min_value=1, max_value=4),
           n2=st.integers(min_value=1, max_value=4))
    def test_waste_monotone_in_chip_count(self, kgd, n1, n2):
        low, high = sorted((n1, n2))
        a = direct_attach_cost(50.0, 10.0, low, 0.99, 0.99, kgd)
        b = direct_attach_cost(50.0, 10.0, high, 0.99, 0.99, kgd)
        assert b.wasted_kgd >= a.wasted_kgd - 1e-12


class TestFSMCProperties:
    @given(n=st.integers(min_value=1, max_value=7),
           k=st.integers(min_value=1, max_value=5))
    def test_closed_form_matches_enumeration(self, n, k):
        assert len(enumerate_collocations(n, k)) == collocation_count(n, k)

    @given(n=st.integers(min_value=1, max_value=7),
           k=st.integers(min_value=1, max_value=5))
    def test_count_is_sum_of_multiset_coefficients(self, n, k):
        expected = sum(math.comb(n + i - 1, i) for i in range(1, k + 1))
        assert collocation_count(n, k) == expected

    @given(n=st.integers(min_value=1, max_value=6),
           k=st.integers(min_value=1, max_value=4))
    def test_collocations_canonical(self, n, k):
        for collocation in enumerate_collocations(n, k):
            assert tuple(sorted(collocation)) == collocation
            assert all(0 <= index < n for index in collocation)


class TestModelProperties:
    @settings(max_examples=25)
    @given(area=st.floats(min_value=50.0, max_value=900.0),
           node=catalog_node_names)
    def test_re_breakdown_sums(self, area, node):
        system = partition_monolith(area, get_node(node), 2, mcm())
        re = compute_re_cost(system)
        assert re.total == pytest.approx(sum(re.as_dict().values()))

    @settings(max_examples=25)
    @given(area=st.floats(min_value=50.0, max_value=900.0),
           node=catalog_node_names,
           count=st.integers(min_value=2, max_value=6))
    def test_partition_conserves_module_area(self, area, node, count):
        system = partition_monolith(area, get_node(node), count, mcm())
        assert system.module_area == pytest.approx(area)

    @settings(max_examples=25)
    @given(area=st.floats(min_value=50.0, max_value=500.0),
           quantity=st.floats(min_value=1e3, max_value=1e8))
    def test_portfolio_conserves_nre(self, area, quantity):
        """Summing amortized shares over production recovers total NRE."""
        node = get_node("7nm")
        module = Module("m", area, node)
        chip = make_chiplet("c", [module], node, FractionOverhead(0.1))
        one = multichip("one", [chip], mcm(), quantity=quantity)
        two = multichip("two", [chip, chip], mcm(), quantity=quantity * 2)
        portfolio = Portfolio([one, two])
        recovered = sum(
            portfolio.amortized_nre(system).total * system.quantity
            for system in portfolio.systems
        )
        assert recovered == pytest.approx(
            portfolio.total_nre().total, rel=1e-9
        )

    @settings(max_examples=20)
    @given(area=st.floats(min_value=100.0, max_value=900.0),
           fraction=st.floats(min_value=0.0, max_value=0.4))
    def test_d2d_overhead_never_reduces_cost(self, area, fraction):
        node = get_node("5nm")
        base = compute_re_cost(
            partition_monolith(area, node, 2, mcm(), d2d_fraction=0.0)
        ).total
        with_d2d = compute_re_cost(
            partition_monolith(area, node, 2, mcm(), d2d_fraction=fraction)
        ).total
        assert with_d2d >= base - 1e-9
