"""Shared Hypothesis strategies for the property suite.

One vocabulary of generated model objects — nodes, systems across every
packaging scheme, portfolios, design spaces, scenario documents — so
each property module states *invariants*, not object construction.
Ranges are chosen to keep every generated input valid (dies fit on the
wafer, technologies support the chiplet counts, registries resolve) and
cheap to evaluate, so example budgets buy coverage instead of runtime.
"""

from hypothesis import strategies as st

from repro.core.module import Module
from repro.core.system import multichip
from repro.core.system import chiplet as make_chiplet
from repro.d2d.overhead import FractionOverhead
from repro.explore.partition import partition_monolith, soc_reference
from repro.packaging.info import info
from repro.packaging.interposer import interposer_25d
from repro.packaging.mcm import mcm
from repro.process.catalog import get_node
from repro.process.node import ProcessNode
from repro.reuse.portfolio import Portfolio
from repro.scenario.spec import MonteCarloStudy, ScenarioSpec, SearchStudy
from repro.search.space import DesignSpace

# -- scalar ranges shared with the core invariant tests --------------------

densities = st.floats(min_value=0.0, max_value=1.0)
clusters = st.floats(min_value=0.1, max_value=100.0)
areas = st.floats(min_value=1.0, max_value=2000.0)

#: Catalog nodes every registry resolves out of the box.
CATALOG_NODES = ("14nm", "10nm", "7nm", "5nm")

#: Multi-chip integration technologies by registry name.
TECHNOLOGIES = {"mcm": mcm, "info": info, "2.5d": interposer_25d}

catalog_node_names = st.sampled_from(CATALOG_NODES)
catalog_nodes = catalog_node_names.map(get_node)
technology_names = st.sampled_from(sorted(TECHNOLOGIES))

#: Functional module areas small enough that every partition's die
#: (area/n plus D2D overhead) fits each technology's reach.
module_areas = st.floats(min_value=50.0, max_value=800.0)


@st.composite
def process_nodes(draw, name: str = "gen-node") -> ProcessNode:
    """A random (valid) logic :class:`ProcessNode`."""
    return ProcessNode(
        name=name,
        defect_density=draw(st.floats(min_value=0.01, max_value=0.3)),
        cluster_param=draw(st.floats(min_value=1.0, max_value=6.0)),
        wafer_price=draw(st.floats(min_value=2_000.0, max_value=20_000.0)),
        transistor_density=draw(st.floats(min_value=20.0, max_value=200.0)),
        km_per_mm2=draw(st.floats(min_value=0.0, max_value=50_000.0)),
        kc_per_mm2=draw(st.floats(min_value=0.0, max_value=20_000.0)),
        mask_set_cost=draw(st.floats(min_value=0.0, max_value=5e6)),
        ip_fixed_cost=draw(st.floats(min_value=0.0, max_value=5e6)),
        d2d_interface_nre=draw(st.floats(min_value=0.0, max_value=1e6)),
    )


@st.composite
def technologies(draw):
    """A fresh instance of one multi-chip integration technology."""
    return TECHNOLOGIES[draw(technology_names)]()


@st.composite
def systems(draw, schemes: "tuple[str, ...] | None" = None):
    """A priced-ready :class:`System` across all packaging schemes.

    ``schemes`` restricts the draw (e.g. ``("mcm", "2.5d")``); the
    default covers the monolithic SoC plus every multi-chip technology.
    """
    scheme = draw(
        st.sampled_from(schemes or ("soc", "mcm", "info", "2.5d"))
    )
    node = get_node(draw(catalog_node_names))
    area = draw(module_areas)
    quantity = draw(st.floats(min_value=1e3, max_value=1e7))
    if scheme == "soc":
        return soc_reference(area, node, quantity=quantity)
    return partition_monolith(
        area,
        node,
        draw(st.integers(min_value=2, max_value=4)),
        TECHNOLOGIES[scheme](),
        d2d_fraction=draw(st.floats(min_value=0.0, max_value=0.3)),
        quantity=quantity,
    )


@st.composite
def portfolios(draw) -> Portfolio:
    """A reuse portfolio sharing a chiplet pool across 2-4 systems."""
    node = get_node(draw(catalog_node_names))
    tech = TECHNOLOGIES[draw(technology_names)]()
    d2d = FractionOverhead(draw(st.floats(min_value=0.0, max_value=0.3)))
    pool = [
        make_chiplet(
            f"pool-chiplet{index}",
            [Module(f"pool-module{index}", area, node)],
            node,
            d2d,
        )
        for index, area in enumerate(
            draw(
                st.lists(
                    st.floats(min_value=40.0, max_value=300.0),
                    min_size=1,
                    max_size=3,
                )
            )
        )
    ]
    n_systems = draw(st.integers(min_value=2, max_value=4))
    members = []
    for index in range(n_systems):
        chips = draw(
            st.lists(st.sampled_from(pool), min_size=1, max_size=3)
        )
        members.append(
            multichip(
                f"member{index}",
                chips,
                tech,
                quantity=draw(st.floats(min_value=1e3, max_value=1e6)),
            )
        )
    return Portfolio(members)


@st.composite
def design_spaces(draw, test_cost: bool = False) -> DesignSpace:
    """A small (but arbitrary) :class:`DesignSpace`.

    Kept to a handful of candidates so exhaustive oracles and O(n^2)
    frontier cross-checks stay cheap inside a 200-example budget.
    """
    n_areas = draw(st.integers(min_value=1, max_value=3))
    space_areas = tuple(
        100.0 + 50.0 * draw(st.integers(min_value=0, max_value=12))
        for _ in range(n_areas)
    )
    return DesignSpace(
        module_areas=space_areas,
        nodes=tuple(
            draw(
                st.lists(
                    catalog_node_names, min_size=1, max_size=2, unique=True
                )
            )
        ),
        technologies=tuple(
            draw(
                st.lists(
                    st.sampled_from(("mcm", "2.5d")),
                    min_size=1,
                    max_size=2,
                    unique=True,
                )
            )
        ),
        chiplet_counts=(2, 3),
        d2d_fractions=(draw(st.floats(min_value=0.0, max_value=0.2)),),
        quantity=draw(st.floats(min_value=1e4, max_value=1e6)),
        top_k=draw(st.integers(min_value=0, max_value=3)),
        include_soc=draw(st.booleans()),
        test_cost={} if test_cost else None,
        batch_size=draw(st.sampled_from((2, 7, 4096))),
    )


@st.composite
def montecarlo_studies(draw, precision: str = "exact") -> MonteCarloStudy:
    """A small ``montecarlo`` scenario study."""
    technology = draw(st.sampled_from(("soc",) + tuple(sorted(TECHNOLOGIES))))
    return MonteCarloStudy(
        name="mc",
        module_area=draw(module_areas),
        node=draw(catalog_node_names),
        technology=technology,
        n_chiplets=(
            1 if technology == "soc"
            else draw(st.integers(min_value=2, max_value=4))
        ),
        d2d_fraction=draw(st.floats(min_value=0.0, max_value=0.3)),
        draws=draw(st.integers(min_value=2, max_value=8)),
        sigma=draw(st.floats(min_value=0.01, max_value=0.4)),
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        precision=precision,
    )


@st.composite
def search_studies(draw) -> SearchStudy:
    """A small ``search`` scenario study wrapping :func:`design_spaces`."""
    space = draw(design_spaces())
    return SearchStudy(
        name="search",
        module_areas=space.module_areas,
        nodes=space.nodes,
        technologies=space.technologies,
        chiplet_counts=space.chiplet_counts,
        d2d_fractions=space.d2d_fractions,
        quantity=space.quantity,
        top_k=space.top_k,
        include_soc=space.include_soc,
        batch_size=space.batch_size,
    )


@st.composite
def scenario_specs(draw) -> ScenarioSpec:
    """A whole scenario document: optional custom registry entries plus
    1-2 studies (config-v2 registry payloads shared with the schema)."""
    nodes = {}
    if draw(st.booleans()):
        nodes["custom-node"] = {
            "base": draw(catalog_node_names),
            "defect_density": draw(st.floats(min_value=0.01, max_value=0.3)),
        }
    studies = [draw(montecarlo_studies())]
    if draw(st.booleans()):
        studies.append(draw(search_studies()))
    if nodes:
        # Point the first study at the custom node so the registry
        # section is actually exercised end to end.
        studies[0] = MonteCarloStudy(
            **{
                **{
                    f: getattr(studies[0], f)
                    for f in studies[0].__dataclass_fields__
                },
                "node": "custom-node",
            }
        )
    return ScenarioSpec(
        name="generated",
        description=draw(st.sampled_from(("", "property-generated"))),
        nodes=nodes,
        studies=tuple(studies),
    )
