"""Fast == oracle parity on arbitrary generated inputs.

Every accelerated path — ``fastmc``, ``fastsweep``, ``fastportfolio``,
the ``SpaceEvaluator`` and the ``rng`` stream — carries a bit-parity
contract against its naive oracle (PERFORMANCE.md).  The unit suites
hold them equal on the seven paper figures; these properties hold them
equal on *generated* systems, portfolios and spaces.
"""

import random

from hypothesis import given
from hypothesis import strategies as st

from checks import assert_bit_equal, assert_sequences_equal
from repro.core.re_cost import compute_re_cost
from repro.engine.costengine import CostEngine
from repro.engine.fastmc import sample_re_costs
from repro.engine.fastportfolio import PortfolioEngine
from repro.engine.fastsweep import partition_re_cost, soc_re_cost
from repro.engine.rng import sample_prior
from repro.explore.montecarlo import monte_carlo_cost_naive
from repro.explore.partition import partition_monolith, soc_reference
from repro.process.catalog import get_node
from repro.search.engine import run_search
from repro.search.oracle import run_search_oracle
from repro.yieldmodel.sampling import DefectDensityPrior
from strategies import (
    TECHNOLOGIES,
    catalog_node_names,
    design_spaces,
    module_areas,
    portfolios,
    systems,
    technology_names,
)

_RE_COMPONENTS = (
    "raw_chips", "chip_defects", "raw_package", "package_defects",
    "wasted_kgd", "total",
)


@given(system=systems(), draws=st.integers(min_value=1, max_value=6),
       sigma=st.floats(min_value=0.01, max_value=0.4),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_fastmc_matches_naive_sampler(system, draws, sigma, seed):
    fast = sample_re_costs(system, draws=draws, sigma=sigma, seed=seed)
    naive = monte_carlo_cost_naive(
        system, draws=draws, sigma=sigma, seed=seed
    ).samples
    assert_sequences_equal("fastmc.sample_re_costs", "re_total", fast, naive)


@given(area=module_areas, node=catalog_node_names,
       count=st.integers(min_value=2, max_value=4),
       technology=technology_names,
       d2d=st.floats(min_value=0.0, max_value=0.3))
def test_fastsweep_partition_matches_oracle(area, node, count, technology, d2d):
    node = get_node(node)
    tech = TECHNOLOGIES[technology]()
    fast = partition_re_cost(area, node, count, tech, d2d_fraction=d2d)
    oracle = compute_re_cost(
        partition_monolith(area, node, count, tech, d2d_fraction=d2d)
    )
    for component in _RE_COMPONENTS:
        assert_bit_equal(
            "fastsweep.partition_re_cost", component,
            getattr(fast, component), getattr(oracle, component),
        )


@given(area=module_areas, node=catalog_node_names)
def test_fastsweep_soc_matches_oracle(area, node):
    node = get_node(node)
    fast = soc_re_cost(area, node)
    oracle = compute_re_cost(soc_reference(area, node))
    for component in _RE_COMPONENTS:
        assert_bit_equal(
            "fastsweep.soc_re_cost", component,
            getattr(fast, component), getattr(oracle, component),
        )


@given(system=systems())
def test_costengine_matches_compute_re_cost(system):
    engine = CostEngine()
    fast = engine.evaluate_re(system)
    oracle = compute_re_cost(system)
    for component in _RE_COMPONENTS:
        assert_bit_equal(
            "CostEngine.evaluate_re", component,
            getattr(fast, component), getattr(oracle, component),
        )


@given(portfolio=portfolios())
def test_fastportfolio_matches_portfolio_oracle(portfolio):
    engine = PortfolioEngine(CostEngine())
    batched = engine.evaluate(portfolio)
    for system, cost in zip(portfolio.systems, batched.costs):
        oracle = portfolio.amortized_cost(system)
        assert_bit_equal(
            "PortfolioEngine.evaluate", f"total[{system.name}]",
            cost.total, oracle.total,
        )
        assert_bit_equal(
            "PortfolioEngine.evaluate", f"nre[{system.name}]",
            cost.amortized_nre.total, oracle.amortized_nre.total,
        )
    assert_bit_equal(
        "PortfolioEngine.evaluate", "average",
        batched.average, portfolio.average_cost(),
    )


@given(portfolio=portfolios(),
       scales=st.lists(st.floats(min_value=0.1, max_value=10.0),
                       min_size=1, max_size=3))
def test_fastportfolio_solve_matches_scalar_evaluate(portfolio, scales):
    engine = PortfolioEngine(CostEngine())
    decomposition = engine.decompose(portfolio)
    solve = decomposition.solve(scales)
    for index, scale in enumerate(solve.scales):
        scalar = decomposition.evaluate(scale)
        assert_sequences_equal(
            "PortfolioDecomposition.solve", f"totals[scale={scale}]",
            solve.point_totals(index), scalar.totals(),
        )
        assert_bit_equal(
            "PortfolioDecomposition.solve", f"average[scale={scale}]",
            solve.point_average(index), scalar.average,
        )


@given(space=design_spaces())
def test_space_evaluator_matches_search_oracle(space):
    fast = run_search(space)
    oracle = run_search_oracle(space)
    assert_bit_equal(
        "run_search", "n_candidates", fast.n_candidates, oracle.n_candidates
    )
    assert_sequences_equal(
        "run_search", "frontier_indices",
        fast.frontier_indices(), oracle.frontier_indices(),
    )
    for fast_candidate, oracle_candidate in zip(fast.frontier, oracle.frontier):
        for metric in ("re", "nre", "total", "silicon_area", "footprint"):
            assert_bit_equal(
                "run_search", f"frontier.{metric}[#{fast_candidate.index}]",
                getattr(fast_candidate, metric),
                getattr(oracle_candidate, metric),
            )
    assert_sequences_equal(
        "run_search", "top_indices",
        [candidate.index for candidate in fast.top],
        [candidate.index for candidate in oracle.top],
    )


@given(mode=st.floats(min_value=0.01, max_value=1.0),
       sigma=st.floats(min_value=0.01, max_value=0.5),
       count=st.integers(min_value=1, max_value=300),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_rng_prior_stream_matches_per_call_loop(mode, sigma, count, seed):
    prior = DefectDensityPrior(mode=mode, sigma=sigma)
    vectorized = sample_prior(prior, random.Random(seed), count)
    loop_rng = random.Random(seed)
    looped = [prior.sample(loop_rng) for _ in range(count)]
    assert_sequences_equal("engine.rng.sample_prior", "draws", vectorized, looped)
