"""Portfolio correctness fixes: quantity validation at construction,
stable value-based design keys (round-trip sharing), and D2D
interface-NRE collision detection."""

import pytest

from repro.config import portfolio_from_dict, portfolio_to_dict
from repro.core.chip import Chip
from repro.core.module import Module
from repro.core.system import System, multichip
from repro.d2d.overhead import FractionOverhead
from repro.errors import InvalidParameterError
from repro.packaging.mcm import mcm
from repro.reuse.portfolio import Portfolio
from repro.reuse.scms import SCMSConfig, build_scms


def _force_quantity(system: System, quantity: float) -> System:
    """A member with an out-of-domain quantity (bypassing System's own
    constructor validation, as a buggy caller or mutation could)."""
    object.__setattr__(system, "quantity", quantity)
    return system


class TestQuantityValidation:
    @pytest.mark.parametrize("quantity", [0.0, -10.0, float("nan"), float("inf")])
    def test_bad_quantity_rejected_at_construction(
        self, simple_chiplet, mcm_tech, quantity
    ):
        good = multichip("good", [simple_chiplet], mcm_tech, quantity=1000.0)
        bad = _force_quantity(
            multichip("bad", [simple_chiplet], mcm_tech, quantity=1000.0),
            quantity,
        )
        with pytest.raises(InvalidParameterError, match="'bad'"):
            Portfolio([good, bad])

    def test_no_zero_division_surfaces(self, simple_chiplet, mcm_tech):
        """The old failure mode: a bare ZeroDivisionError out of the
        package share (reuse/portfolio amortization)."""
        bad = _force_quantity(
            multichip("zeroed", [simple_chiplet], mcm_tech, quantity=1.0), 0.0
        )
        try:
            Portfolio([bad])
        except ZeroDivisionError:  # pragma: no cover - the old bug
            pytest.fail("Portfolio leaked a bare ZeroDivisionError")
        except InvalidParameterError as error:
            assert "zeroed" in str(error)


class TestStableDesignKeys:
    """Value-equal designs are one design, shared object or not."""

    def _fresh_system(self, name, n7, mcm_tech, instances=1):
        module = Module("shared-ip", 120.0, n7)
        chip = Chip.of(
            "shared-chip", (module,), n7, d2d=FractionOverhead(0.10)
        )
        return multichip(name, [chip] * instances, mcm_tech, quantity=1000.0)

    def test_rebuilt_objects_price_like_shared_objects(self, n7, mcm_tech):
        # Shared-object portfolio (the in-process idiom).
        module = Module("shared-ip", 120.0, n7)
        chip = Chip.of(
            "shared-chip", (module,), n7, d2d=FractionOverhead(0.10)
        )
        shared = Portfolio(
            [
                multichip("a", [chip], mcm_tech, quantity=1000.0),
                multichip("b", [chip, chip], mcm_tech, quantity=1000.0),
            ]
        )
        # Rebuilt portfolio: every system gets its own value-equal objects
        # (what a scenario/config round-trip or external generator does).
        rebuilt = Portfolio(
            [
                self._fresh_system("a", n7, mcm_tech, 1),
                self._fresh_system("b", n7, mcm_tech, 2),
            ]
        )
        for shared_sys, rebuilt_sys in zip(shared.systems, rebuilt.systems):
            expected = shared.amortized_nre(shared_sys)
            actual = rebuilt.amortized_nre(rebuilt_sys)
            assert actual.modules == expected.modules
            assert actual.chips == expected.chips
            assert actual.d2d == expected.d2d
        assert rebuilt.total_nre().total == shared.total_nre().total

    def test_duplicated_pool_entries_price_identically(self):
        """A config document listing the shared chip under two refs (two
        merged documents, a hand-written file) must not double the NRE."""
        document = {
            "version": 1,
            "modules": {
                "m0": {"name": "ip", "area": 100.0, "node": "7nm"},
                "m1": {"name": "ip", "area": 100.0, "node": "7nm"},
            },
            "chips": {
                "c0": {"name": "chip", "modules": ["m0"], "node": "7nm",
                       "d2d_fraction": 0.1},
                "c1": {"name": "chip", "modules": ["m1"], "node": "7nm",
                       "d2d_fraction": 0.1},
            },
            "packages": {},
            "systems": [
                {"name": "one", "chips": ["c0"], "integration": "mcm",
                 "quantity": 1000.0},
                {"name": "two", "chips": ["c1", "c1"], "integration": "mcm",
                 "quantity": 1000.0},
            ],
        }
        duplicated = portfolio_from_dict(document)
        shared_doc = {
            **document,
            "chips": {"c0": document["chips"]["c0"]},
            "modules": {"m0": document["modules"]["m0"]},
            "systems": [
                {**document["systems"][0], "chips": ["c0"]},
                {**document["systems"][1], "chips": ["c0", "c0"]},
            ],
        }
        shared = portfolio_from_dict(shared_doc)
        for dup_sys, shared_sys in zip(duplicated.systems, shared.systems):
            assert duplicated.amortized_nre(dup_sys).total == (
                shared.amortized_nre(shared_sys).total
            )

    def test_json_round_trip_prices_identically(self):
        """Regression: a reuse portfolio serialized and reloaded reports
        the same amortized costs as the in-process original."""
        study = build_scms(SCMSConfig(counts=(1, 2)), mcm())
        original = study.chiplet_package_reused
        reloaded = portfolio_from_dict(portfolio_to_dict(original))
        for orig_sys, new_sys in zip(original.systems, reloaded.systems):
            assert reloaded.amortized_cost(new_sys).total == pytest.approx(
                original.amortized_cost(orig_sys).total, rel=0, abs=0
            )

    def test_distinct_names_stay_distinct_designs(self, n7, mcm_tech):
        """SCMS footnote 3: a mirrored twin (same module, different chip
        name) is a second mask set — value keys must not merge it."""
        module = Module("m", 100.0, n7)
        d2d = FractionOverhead(0.10)
        base = Chip.of("base", (module,), n7, d2d=d2d)
        mirror = Chip.of("mirror", (module,), n7, d2d=d2d)
        portfolio = Portfolio(
            [multichip("s", [base, mirror], mcm_tech, quantity=1000.0)]
        )
        from repro.core.nre_cost import chip_design_nre

        assert portfolio.total_nre().chips == pytest.approx(
            chip_design_nre(base) + chip_design_nre(mirror)
        )


class TestD2DCollisionDetection:
    def test_conflicting_interface_nre_raises(self, mcm_tech, n7):
        shadow = n7.evolve(d2d_interface_nre=n7.d2d_interface_nre * 2.0)
        assert shadow.name == n7.name
        d2d = FractionOverhead(0.10)
        chip_a = Chip.of("a", (Module("ma", 100.0, n7),), n7, d2d=d2d)
        chip_b = Chip.of("b", (Module("mb", 100.0, shadow),), shadow, d2d=d2d)
        with pytest.raises(InvalidParameterError, match="conflicting D2D"):
            Portfolio(
                [
                    multichip("sa", [chip_a], mcm_tech, quantity=1000.0),
                    multichip("sb", [chip_b], mcm_tech, quantity=1000.0),
                ]
            )

    def test_same_nre_still_shares(self, mcm_tech, n7):
        """Distinct node objects agreeing on the D2D NRE share a design
        (the paper's one-design-per-node rule)."""
        twin = n7.evolve(defect_density=n7.defect_density * 1.5)
        d2d = FractionOverhead(0.10)
        chip_a = Chip.of("a", (Module("ma", 100.0, n7),), n7, d2d=d2d)
        chip_b = Chip.of("b", (Module("mb", 100.0, twin),), twin, d2d=d2d)
        portfolio = Portfolio(
            [
                multichip("sa", [chip_a], mcm_tech, quantity=1000.0),
                multichip("sb", [chip_b], mcm_tech, quantity=1000.0),
            ]
        )
        assert portfolio.amortized_nre(portfolio.systems[0]).d2d == (
            pytest.approx(n7.d2d_interface_nre / 2000.0)
        )
