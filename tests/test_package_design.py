"""PackageDesign: socket fitting and oversized-package costing."""

import pytest

from repro.core.package_design import PackageDesign
from repro.errors import InvalidParameterError


class TestAccommodates:
    def test_exact_fit(self, mcm_tech):
        design = PackageDesign.for_chips("p", mcm_tech, [100.0, 200.0])
        assert design.accommodates([100.0, 200.0])
        assert design.accommodates([200.0, 100.0])

    def test_fewer_chips_fit(self, mcm_tech):
        design = PackageDesign.for_chips("p", mcm_tech, [100.0, 200.0])
        assert design.accommodates([150.0])
        assert design.accommodates([200.0])

    def test_too_many_chips_rejected(self, mcm_tech):
        design = PackageDesign.for_chips("p", mcm_tech, [100.0, 200.0])
        assert not design.accommodates([100.0, 100.0, 100.0])

    def test_oversized_chip_rejected(self, mcm_tech):
        design = PackageDesign.for_chips("p", mcm_tech, [100.0, 200.0])
        assert not design.accommodates([250.0])

    def test_greedy_matching_both_large(self, mcm_tech):
        design = PackageDesign.for_chips("p", mcm_tech, [100.0, 200.0])
        assert not design.accommodates([150.0, 150.0])

    def test_empty_design_rejected(self, mcm_tech):
        with pytest.raises(InvalidParameterError):
            PackageDesign.for_chips("p", mcm_tech, [])

    def test_nonpositive_socket_rejected(self, mcm_tech):
        with pytest.raises(InvalidParameterError):
            PackageDesign.for_chips("p", mcm_tech, [100.0, 0.0])


class TestCosting:
    def test_footprint_follows_design(self, mcm_tech):
        design = PackageDesign.for_chips("p", mcm_tech, [100.0] * 4)
        assert design.footprint == pytest.approx(
            mcm_tech.package_area([100.0] * 4)
        )

    def test_packaging_cost_sized_by_design(self, mcm_tech):
        design = PackageDesign.for_chips("p", mcm_tech, [100.0] * 4)
        reused = design.packaging_cost([100.0], kgd_cost=50.0)
        plain = mcm_tech.packaging_cost([100.0], kgd_cost=50.0)
        assert reused.raw_package > plain.raw_package

    def test_packaging_cost_rejects_misfit(self, mcm_tech):
        design = PackageDesign.for_chips("p", mcm_tech, [100.0])
        with pytest.raises(InvalidParameterError):
            design.packaging_cost([100.0, 100.0], kgd_cost=50.0)

    def test_nre_follows_design_size(self, mcm_tech):
        small = PackageDesign.for_chips("s", mcm_tech, [100.0])
        large = PackageDesign.for_chips("l", mcm_tech, [100.0] * 4)
        assert large.nre > small.nre

    def test_interposer_design_reuse_penalty(self, interposer_tech):
        """Reusing a 4x interposer for a 1x system carries the large
        interposer's cost and yield — the paper's Section 5.1 warning."""
        design = PackageDesign.for_chips("big", interposer_tech, [222.0] * 4)
        reused = design.packaging_cost([222.0], kgd_cost=40.0)
        plain = interposer_tech.packaging_cost([222.0], kgd_cost=40.0)
        assert reused.total > 2.0 * plain.total
