"""Amortization and total-cost assembly."""

import pytest

from repro.core.amortize import amortize, amortized_unit_nre
from repro.core.breakdown import NRECost
from repro.core.nre_cost import compute_system_nre
from repro.core.re_cost import compute_re_cost
from repro.core.total import compute_total_cost
from repro.errors import InvalidParameterError


class TestAmortize:
    def test_per_unit_share(self):
        assert amortize(1e6, 1000.0) == 1000.0

    def test_large_quantity_vanishes(self):
        assert amortize(1e6, 1e12) == pytest.approx(0.0, abs=1e-3)

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            amortize(1e6, 0.0)
        with pytest.raises(InvalidParameterError):
            amortize(-1.0, 100.0)

    def test_componentwise(self):
        nre = NRECost(10.0, 20.0, 5.0, 1.0)
        unit = amortized_unit_nre(nre, 10.0)
        assert unit.modules == 1.0
        assert unit.total == pytest.approx(3.6)

    def test_componentwise_invalid_quantity(self):
        with pytest.raises(InvalidParameterError):
            amortized_unit_nre(NRECost(1, 1, 1, 1), -5.0)


class TestTotalCost:
    def test_total_is_re_plus_amortized_nre(self, simple_soc):
        cost = compute_total_cost(simple_soc)
        re = compute_re_cost(simple_soc).total
        nre = compute_system_nre(simple_soc).total
        assert cost.total == pytest.approx(re + nre / simple_soc.quantity)

    def test_quantity_override(self, simple_soc):
        default = compute_total_cost(simple_soc)
        bigger = compute_total_cost(simple_soc, quantity=10 * simple_soc.quantity)
        assert bigger.total < default.total
        assert bigger.re_total == pytest.approx(default.re_total)

    def test_re_share_grows_with_quantity(self, simple_soc):
        shares = [
            compute_total_cost(simple_soc, q).re_share
            for q in (1e4, 1e5, 1e6, 1e7, 1e8)
        ]
        assert shares == sorted(shares)
        assert shares[-1] > 0.95

    def test_nre_dominates_small_quantities(self, simple_soc):
        """The paper: 'if the production quantity is small, the NRE cost
        is dominant'."""
        cost = compute_total_cost(simple_soc, 1000.0)
        assert cost.nre_total > cost.re_total
