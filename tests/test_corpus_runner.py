"""Corpus runner robustness: resume-from-store, crash retry, timeouts,
corrupt-entry recovery, keep-going semantics, typed study failures."""

import json
import os

import pytest

from repro.corpus import (
    EXIT_CORRUPT,
    EXIT_OK,
    EXIT_PARTIAL,
    CorpusOptions,
    CorpusRunner,
    Manifest,
    ResultStore,
    StoreKey,
    corpus_from_dict,
    execute_unit,
    manifest_path,
    run_corpus,
)
from repro.errors import CorpusError, StudyError


def small_corpus(n_areas=2, study_extra=None, name="test-corpus"):
    study = {
        "kind": "partition_sweep",
        "name": "sweep",
        "module_area": "$area",
        "node": "7nm",
        "technology": "mcm",
        "chiplet_counts": [1, 2],
    }
    study.update(study_extra or {})
    return corpus_from_dict(
        {
            "corpus": name,
            "template": {"scenario": "t-{area}", "studies": [study]},
            "axes": {"area": [100 * (i + 1) for i in range(n_areas)]},
        }
    )


def inline_options(**overrides):
    payload = dict(workers=1, inline=True, backoff=0.01)
    payload.update(overrides)
    return CorpusOptions(**payload)


def store_bytes(root):
    entries = {}
    for directory, _dirs, files in os.walk(os.path.join(root, "objects")):
        for filename in files:
            path = os.path.join(directory, filename)
            with open(path, "rb") as handle:
                entries[filename] = handle.read()
    return entries


class TestExecuteUnit:
    def test_returns_storable_payload(self):
        corpus = small_corpus(n_areas=1)
        unit = corpus.units[0]
        payload = execute_unit(unit.document, unit.study)
        assert payload["scenario"] == "t-100"
        assert payload["study"] == "sweep"
        assert payload["kind"] == "partition_sweep"
        assert payload["rows"]
        assert json.loads(json.dumps(payload)) == payload

    def test_matches_direct_scenario_run(self):
        from repro.scenario import run_scenario

        corpus = small_corpus(n_areas=1)
        unit = corpus.units[0]
        payload = execute_unit(unit.document, unit.study)
        direct = run_scenario(dict(unit.document)).result("sweep")
        assert payload["text"] == direct.text
        assert len(payload["rows"]) == len(direct.rows)

    def test_unknown_study_raises(self):
        corpus = small_corpus(n_areas=1)
        with pytest.raises(CorpusError, match="has no study"):
            execute_unit(corpus.units[0].document, "absent")


class TestInlineRun:
    def test_all_units_complete(self, tmp_path):
        corpus = small_corpus()
        report = run_corpus(corpus, str(tmp_path), options=inline_options())
        assert report.exit_code == EXIT_OK
        counts = report.counts()
        assert counts["completed"] == 2 and counts["computed"] == 2

    def test_manifest_written_and_finished(self, tmp_path):
        corpus = small_corpus()
        report = run_corpus(corpus, str(tmp_path), options=inline_options())
        manifest = Manifest.load(report.manifest_path)
        assert manifest.finished
        assert manifest.counts()["completed"] == 2
        assert all(
            record.source == "computed" for record in manifest.units.values()
        )

    def test_resume_serves_everything_from_store(self, tmp_path):
        corpus = small_corpus()
        run_corpus(corpus, str(tmp_path), options=inline_options())
        before = store_bytes(str(tmp_path))
        report = run_corpus(corpus, str(tmp_path), options=inline_options())
        assert report.exit_code == EXIT_OK
        assert report.counts()["from_store"] == 2
        assert store_bytes(str(tmp_path)) == before

    def test_partial_store_only_computes_missing_units(self, tmp_path):
        run_corpus(
            small_corpus(n_areas=1), str(tmp_path), options=inline_options()
        )
        report = run_corpus(
            small_corpus(n_areas=3), str(tmp_path), options=inline_options()
        )
        counts = report.counts()
        assert counts["from_store"] == 1 and counts["computed"] == 2

    def test_failed_study_recorded_not_fatal(self, tmp_path):
        corpus = small_corpus(study_extra={"node": "not-a-node"})
        report = run_corpus(corpus, str(tmp_path), options=inline_options())
        assert report.exit_code == EXIT_PARTIAL
        assert report.counts()["failed"] == 2
        outcome = report.outcomes[0]
        assert outcome.error_type == "StudyError"
        assert "not-a-node" in outcome.error
        manifest = Manifest.load(report.manifest_path)
        record = manifest.units["t-100/sweep"]
        assert record.status == "failed"
        assert record.error_type == "StudyError"
        assert record.attempts == 1  # deterministic failures are not retried

    def test_fail_fast_aborts(self, tmp_path):
        corpus = small_corpus(n_areas=3, study_extra={"node": "not-a-node"})
        report = run_corpus(
            corpus, str(tmp_path), options=inline_options(keep_going=False)
        )
        assert report.aborted
        assert report.exit_code == EXIT_PARTIAL
        manifest = Manifest.load(report.manifest_path)
        assert not manifest.finished

    def test_registry_hash_keys_the_store(self, tmp_path):
        corpus = small_corpus(n_areas=1)
        store = ResultStore(str(tmp_path))
        runner = CorpusRunner(corpus, store, options=inline_options())
        runner.run()
        unit = corpus.units[0]
        assert store.has(
            StoreKey(unit.spec_hash, runner.registry_hash)
        )
        assert not store.has(StoreKey(unit.spec_hash, "f" * 64))


class TestCorruptionRecovery:
    def corrupt_one(self, root):
        for directory, _dirs, files in os.walk(os.path.join(root, "objects")):
            for filename in files:
                path = os.path.join(directory, filename)
                with open(path) as handle:
                    text = handle.read()
                with open(path, "w") as handle:
                    handle.write(text.replace('"rows"', '"sowr"', 1))
                return path
        raise AssertionError("no entry to corrupt")

    def test_corrupt_entry_quarantined_and_recomputed(self, tmp_path):
        corpus = small_corpus()
        run_corpus(corpus, str(tmp_path), options=inline_options())
        before = store_bytes(str(tmp_path))
        self.corrupt_one(str(tmp_path))
        report = run_corpus(corpus, str(tmp_path), options=inline_options())
        assert report.exit_code == EXIT_CORRUPT
        assert len(report.corrupt_entries) == 1
        assert report.corrupt_entries[0].endswith(".corrupt")
        assert os.path.exists(report.corrupt_entries[0])
        counts = report.counts()
        assert counts["completed"] == 2
        assert counts["from_store"] == 1 and counts["computed"] == 1
        # The recomputed entry is bit-identical to the original write.
        assert store_bytes(str(tmp_path)) == before
        manifest = Manifest.load(report.manifest_path)
        sources = sorted(r.source for r in manifest.units.values())
        assert sources == ["recomputed", "store"]

    def test_injected_corruption_detected_on_next_run(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_CORPUS_FAULTS",
            json.dumps({"corrupt": {"match": "t-100", "times": 1}}),
        )
        monkeypatch.setenv(
            "REPRO_CORPUS_FAULT_STATE", str(tmp_path / "fault-state")
        )
        corpus = small_corpus()
        first = run_corpus(corpus, str(tmp_path / "s"), options=inline_options())
        assert first.exit_code == EXIT_OK  # corruption lands after the write
        second = run_corpus(corpus, str(tmp_path / "s"), options=inline_options())
        assert second.exit_code == EXIT_CORRUPT
        assert second.counts()["completed"] == 2


class TestWorkerPool:
    def test_pool_run_matches_inline_store(self, tmp_path):
        corpus = small_corpus()
        run_corpus(corpus, str(tmp_path / "inline"), options=inline_options())
        report = run_corpus(
            corpus,
            str(tmp_path / "pool"),
            options=CorpusOptions(workers=2, timeout=60, backoff=0.01),
        )
        assert report.exit_code == EXIT_OK
        assert store_bytes(str(tmp_path / "pool")) == store_bytes(
            str(tmp_path / "inline")
        )

    def test_injected_crash_retried_then_succeeds(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_CORPUS_FAULTS",
            json.dumps({"crash": {"match": "t-100/sweep", "times": 1}}),
        )
        monkeypatch.setenv(
            "REPRO_CORPUS_FAULT_STATE", str(tmp_path / "fault-state")
        )
        corpus = small_corpus()
        report = run_corpus(
            corpus,
            str(tmp_path / "s"),
            options=CorpusOptions(workers=1, timeout=60, backoff=0.01),
        )
        assert report.exit_code == EXIT_OK
        manifest = Manifest.load(report.manifest_path)
        record = manifest.units["t-100/sweep"]
        assert record.status == "completed"
        assert record.attempts == 2
        assert record.error_type == ""  # cleared on eventual success

    def test_crash_retries_exhausted_reports_worker_crash(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_CORPUS_FAULTS", json.dumps({"crash": {"match": "t-100"}})
        )
        corpus = small_corpus(n_areas=1)
        report = run_corpus(
            corpus,
            str(tmp_path / "s"),
            options=CorpusOptions(
                workers=1, timeout=60, max_retries=1, backoff=0.01
            ),
        )
        assert report.exit_code == EXIT_PARTIAL
        outcome = report.outcomes[0]
        assert outcome.error_type == "WorkerCrash"
        assert outcome.attempts == 2
        assert "exit code 137" in outcome.error

    def test_timeout_kills_and_reports(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_CORPUS_FAULTS", json.dumps({"delay": {"seconds": 30}})
        )
        corpus = small_corpus(n_areas=1)
        report = run_corpus(
            corpus,
            str(tmp_path / "s"),
            options=CorpusOptions(
                workers=1, timeout=0.5, max_retries=1, backoff=0.01
            ),
        )
        assert report.exit_code == EXIT_PARTIAL
        outcome = report.outcomes[0]
        assert outcome.error_type == "StudyTimeout"
        assert outcome.attempts == 2
        manifest = Manifest.load(report.manifest_path)
        assert manifest.units["t-100/sweep"].error_type == "StudyTimeout"

    def test_interruption_is_reported_on_resume(self, tmp_path):
        corpus = small_corpus()
        store = ResultStore(str(tmp_path))
        # Simulate a killed run: a manifest with unfinished units.
        runner = CorpusRunner(corpus, store, options=inline_options())
        path = manifest_path(store.manifests_dir, corpus.name)
        manifest = Manifest(corpus=corpus.name, path=path)
        from repro.corpus import UnitRecord

        manifest.units["t-100/sweep"] = UnitRecord(
            unit_id="t-100/sweep", spec_hash="00", registry_hash="11",
            status="running",
        )
        manifest.save()
        report = runner.run()
        assert report.interrupted_previous_run
        assert Manifest.load(path).interrupted_previous_run


class TestStudyErrorWrapping:
    def test_unknown_kind_raises_study_error(self):
        from repro.scenario.runner import ScenarioRunner

        with pytest.raises(StudyError, match="no executor"):
            ScenarioRunner().run_study(object(), scenario="s")

    def test_bare_key_error_wrapped_with_context(self):
        from repro.scenario.runner import _EXECUTORS, ScenarioRunner

        class Stub:
            kind = "boom-test"
            name = "stub"

        def exploding(_runner, _study, _registries):
            raise KeyError("missing-internal-key")

        _EXECUTORS["boom-test"] = exploding
        try:
            with pytest.raises(StudyError) as excinfo:
                ScenarioRunner().run_study(Stub(), scenario="scn")
        finally:
            del _EXECUTORS["boom-test"]
        error = excinfo.value
        assert error.scenario == "scn"
        assert error.study == "stub"
        assert error.kind == "boom-test"
        assert "KeyError" in str(error)
        assert "scn/stub" in str(error)
        assert isinstance(error.__cause__, KeyError)

    def test_config_error_gains_scenario_context(self):
        from repro.errors import ConfigError
        from repro.scenario import run_scenario

        document = {
            "scenario": "ctx",
            "studies": [
                {"kind": "partition_sweep", "name": "s", "module_area": 100,
                 "node": "no-such-node", "technology": "mcm"}
            ],
        }
        with pytest.raises(StudyError, match="ctx/s") as excinfo:
            run_scenario(document)
        assert isinstance(excinfo.value, ConfigError)  # back-compat

    def test_study_error_is_config_error_subclass(self):
        from repro.errors import ChipletActuaryError, ConfigError

        assert issubclass(StudyError, ConfigError)
        assert issubclass(StudyError, ChipletActuaryError)
