"""Dominance pruning (`repro.search.frontier`) against the brute-force
oracle: the vectorized sweep, the two-objective prefix-min fast path,
and the scalar fallback must all keep exactly the pairwise-non-dominated
subset, ties and duplicates included."""

import random

import pytest

import repro.search.frontier as frontier
from repro.errors import InvalidParameterError
from repro.search.frontier import (
    DEFAULT_BLOCK_SIZE,
    FrontierAccumulator,
    non_dominated,
    non_dominated_mask,
)


def _brute_force(scores):
    def dominates(a, b):
        return all(x <= y for x, y in zip(a, b)) and any(
            x < y for x, y in zip(a, b)
        )

    return [
        not any(
            dominates(other, row)
            for other in scores
            if other is not row
        )
        for row in scores
    ]


def _random_scores(rng, count, width, grid):
    """Coarse integer grid so ties and exact duplicates are common."""
    return [
        tuple(float(rng.randrange(grid)) for _ in range(width))
        for _ in range(count)
    ]


class TestMaskMatchesBruteForce:
    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    @pytest.mark.parametrize("block_size", [1, 2, 7, DEFAULT_BLOCK_SIZE])
    def test_fuzz(self, width, block_size):
        rng = random.Random(width * 1000 + block_size)
        for trial in range(25):
            scores = _random_scores(
                rng, count=rng.randrange(1, 60), width=width,
                grid=rng.choice([2, 4, 10]),
            )
            assert non_dominated_mask(scores, block_size) == _brute_force(
                scores
            ), (width, block_size, trial, scores)

    def test_duplicates_all_survive(self):
        scores = [(1.0, 2.0), (1.0, 2.0), (1.0, 2.0), (3.0, 3.0)]
        assert non_dominated_mask(scores) == [True, True, True, False]

    def test_single_candidate_kept(self):
        assert non_dominated_mask([(5.0, 5.0)]) == [True]

    def test_empty_input(self):
        assert non_dominated_mask([]) == []
        assert non_dominated([]) == []

    def test_classic_staircase(self):
        scores = [(1.0, 4.0), (2.0, 3.0), (3.0, 2.0), (4.0, 1.0),
                  (3.0, 3.0), (4.0, 4.0)]
        assert non_dominated(scores) == [0, 1, 2, 3]

    @pytest.mark.skipif(frontier._np is None, reason="needs numpy")
    def test_accepts_numpy_arrays(self):
        table = frontier._np.asarray(
            [(1.0, 4.0), (2.0, 3.0), (2.0, 5.0)], dtype=float
        )
        assert non_dominated_mask(table) == [True, True, False]


class TestScalarFallback:
    @pytest.mark.skipif(frontier._np is None, reason="needs numpy")
    @pytest.mark.parametrize("width", [2, 3])
    def test_scalar_path_agrees_with_numpy(self, width, monkeypatch):
        rng = random.Random(width)
        cases = [
            _random_scores(rng, rng.randrange(1, 50), width, grid=5)
            for _ in range(15)
        ]
        vectorized = [non_dominated_mask(scores) for scores in cases]
        monkeypatch.setattr(frontier, "_np", None)
        assert [non_dominated_mask(scores) for scores in cases] == vectorized

    def test_scalar_matches_brute_force(self, monkeypatch):
        monkeypatch.setattr(frontier, "_np", None)
        rng = random.Random(7)
        for _ in range(20):
            scores = _random_scores(rng, rng.randrange(1, 40), 3, grid=4)
            assert non_dominated_mask(scores) == _brute_force(scores)


class TestValidation:
    def test_zero_objectives_rejected(self):
        with pytest.raises(InvalidParameterError, match="at least one"):
            non_dominated_mask([(), ()])

    @pytest.mark.parametrize("block_size", [0, -1])
    def test_bad_block_size_rejected(self, block_size):
        with pytest.raises(InvalidParameterError, match="block_size"):
            non_dominated_mask([(1.0, 2.0)], block_size)


class TestFrontierAccumulator:
    def test_shuffled_blocks_match_one_shot(self):
        rng = random.Random(42)
        scores = _random_scores(rng, 200, 2, grid=12)
        expected = {
            index for index, kept in enumerate(non_dominated_mask(scores))
            if kept
        }
        indices = list(range(len(scores)))
        rng.shuffle(indices)
        accumulator = FrontierAccumulator()
        for start in range(0, len(indices), 17):
            chunk = indices[start:start + 17]
            accumulator.add(
                [scores[index] for index in chunk], chunk
            )
        assert set(accumulator.members()) == expected
        assert len(accumulator) == len(expected)

    def test_members_keep_insertion_order(self):
        accumulator = FrontierAccumulator()
        accumulator.add([(1.0, 4.0), (4.0, 1.0)], ["a", "b"])
        accumulator.add([(2.0, 2.0)], ["c"])
        assert accumulator.members() == ["a", "b", "c"]

    def test_later_block_can_evict(self):
        accumulator = FrontierAccumulator()
        accumulator.add([(3.0, 3.0)], ["loser"])
        accumulator.add([(1.0, 1.0)], ["winner"])
        assert accumulator.members() == ["winner"]

    def test_empty_add_is_noop(self):
        accumulator = FrontierAccumulator()
        accumulator.add([], [])
        assert accumulator.members() == []

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError, match="equal length"):
            FrontierAccumulator().add([(1.0, 2.0)], [])
