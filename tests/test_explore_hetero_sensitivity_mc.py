"""Heterogeneity comparison, sensitivity tornado and Monte-Carlo."""

import pytest

from repro.core.chip import Chip
from repro.core.module import Module
from repro.core.re_cost import compute_re_cost
from repro.core.system import multichip
from repro.d2d.overhead import FractionOverhead
from repro.errors import InvalidParameterError
from repro.explore.heterogeneity import compare_center_nodes
from repro.explore.montecarlo import CostDistribution, monte_carlo_cost
from repro.explore.partition import partition_monolith, soc_reference
from repro.explore.sensitivity import tornado
from repro.packaging.mcm import mcm
from repro.process.catalog import get_node


@pytest.fixture
def ocme_like_system(n7, d2d10, mcm_tech):
    center_module = Module("center", 160.0, n7, scalable_fraction=0.0)
    ext_module = Module("ext", 160.0, n7)
    center = Chip.of("center-chip", (center_module,), n7, d2d=d2d10)
    ext = Chip.of("ext-chip", (ext_module,), n7, d2d=d2d10)
    return center, multichip("sys", [center, ext, ext], mcm_tech)


class TestHeterogeneity:
    def test_mature_center_cheaper(self, ocme_like_system, n7, n14):
        center, system = ocme_like_system
        results = compare_center_nodes(system, center, [n7, n14])
        assert results[0].node.name == "7nm"
        assert results[1].re_per_unit < results[0].re_per_unit
        assert results[1].saving_vs(results[0]) > 0

    def test_original_node_uses_same_chip(self, ocme_like_system, n7):
        center, system = ocme_like_system
        [result] = compare_center_nodes(system, center, [n7])
        assert result.chip_area == pytest.approx(center.area)
        assert result.total_per_unit == pytest.approx(
            compute_re_cost(system).total
            + __import__(
                "repro.core.nre_cost", fromlist=["compute_system_nre"]
            ).compute_system_nre(system).total
            / system.quantity
        )

    def test_unscalable_center_area_constant(self, ocme_like_system, n7, n14):
        center, system = ocme_like_system
        results = compare_center_nodes(system, center, [n7, n14])
        assert results[0].chip_area == pytest.approx(results[1].chip_area)

    def test_foreign_chip_rejected(self, ocme_like_system, n7):
        _center, system = ocme_like_system
        stranger = Chip.of(
            "stranger", (Module("m", 10.0, n7),), n7, d2d=FractionOverhead(0.1)
        )
        with pytest.raises(InvalidParameterError):
            compare_center_nodes(system, stranger, [n7])

    def test_empty_candidates_rejected(self, ocme_like_system):
        center, system = ocme_like_system
        with pytest.raises(InvalidParameterError):
            compare_center_nodes(system, center, [])


class TestSensitivity:
    def test_tornado_sorted_by_swing(self, n5):
        def evaluate(parameter: str, scale: float) -> float:
            d2d = 0.10 * scale if parameter == "d2d" else 0.10
            density_scale = scale if parameter == "defect_density" else 1.0
            node = n5.with_defect_density(n5.defect_density * density_scale)
            system = partition_monolith(800.0, node, 2, mcm(), d2d_fraction=d2d)
            return compute_re_cost(system).total

        results = tornado(["d2d", "defect_density"], evaluate, step=0.2)
        swings = [result.swing for result in results]
        assert swings == sorted(swings, reverse=True)
        # Defect density moves cost more than D2D fraction at 5nm/800mm^2.
        assert results[0].parameter == "defect_density"

    def test_tornado_relative_swing(self, n5):
        results = tornado(
            ["x"], lambda p, s: 100.0 * s, step=0.2
        )
        [result] = results
        assert result.swing == pytest.approx(40.0)
        assert result.relative_swing == pytest.approx(0.4)

    def test_invalid_step(self):
        with pytest.raises(InvalidParameterError):
            tornado(["x"], lambda p, s: 1.0, step=0.0)

    def test_empty_parameters(self):
        with pytest.raises(InvalidParameterError):
            tornado([], lambda p, s: 1.0)


class TestMonteCarlo:
    def test_deterministic_given_seed(self, n5):
        system = soc_reference(400.0, n5)
        a = monte_carlo_cost(system, draws=50, seed=1)
        b = monte_carlo_cost(system, draws=50, seed=1)
        assert a.samples == b.samples

    def test_mean_near_nominal(self, n5):
        system = soc_reference(400.0, n5)
        nominal = compute_re_cost(system).total
        distribution = monte_carlo_cost(system, draws=400, sigma=0.10, seed=2)
        assert distribution.mean == pytest.approx(nominal, rel=0.10)

    def test_quantiles_ordered(self, n5):
        system = soc_reference(400.0, n5)
        distribution = monte_carlo_cost(system, draws=200, seed=3)
        q10 = distribution.quantile(0.10)
        q50 = distribution.quantile(0.50)
        q90 = distribution.quantile(0.90)
        assert q10 <= q50 <= q90
        assert distribution.quantile(0.0) == min(distribution.samples)
        assert distribution.quantile(1.0) == max(distribution.samples)

    def test_zero_sigma_degenerate(self, n5):
        system = soc_reference(400.0, n5)
        distribution = monte_carlo_cost(system, draws=20, sigma=0.0, seed=4)
        assert distribution.std == pytest.approx(0.0, abs=1e-9)

    def test_invalid_quantile(self):
        distribution = CostDistribution(samples=(1.0, 2.0))
        with pytest.raises(InvalidParameterError):
            distribution.quantile(1.5)

    def test_invalid_draws(self, n5):
        with pytest.raises(InvalidParameterError):
            monte_carlo_cost(soc_reference(400.0, n5), draws=0)
