"""JSON round-trip: sharing must survive serialization."""

import json

import pytest

from repro.config import (
    load_portfolio,
    portfolio_from_dict,
    portfolio_to_dict,
    save_portfolio,
    system_to_dict,
)
from repro.core.package_design import PackageDesign
from repro.core.system import multichip
from repro.errors import ConfigError
from repro.reuse.portfolio import Portfolio
from repro.reuse.scms import SCMSConfig, build_scms
from repro.packaging.mcm import mcm


@pytest.fixture
def scms_portfolio():
    return build_scms(SCMSConfig(counts=(1, 2, 4)), mcm()).chiplet_package_reused


class TestRoundTrip:
    def test_costs_preserved(self, scms_portfolio):
        document = portfolio_to_dict(scms_portfolio)
        restored = portfolio_from_dict(document)
        for original, rebuilt in zip(scms_portfolio.systems, restored.systems):
            assert rebuilt.name == original.name
            assert rebuilt.quantity == original.quantity
            original_cost = scms_portfolio.amortized_cost(original)
            rebuilt_cost = restored.amortized_cost(rebuilt)
            assert rebuilt_cost.total == pytest.approx(original_cost.total)
            assert rebuilt_cost.re_total == pytest.approx(
                original_cost.re_total
            )

    def test_sharing_preserved(self, scms_portfolio):
        restored = portfolio_from_dict(portfolio_to_dict(scms_portfolio))
        chips = {
            id(chip)
            for system in restored.systems
            for chip, _n in system.unique_chips()
        }
        assert len(chips) == 1  # one chiplet design
        packages = {id(system.package) for system in restored.systems}
        assert len(packages) == 1  # one package design

    def test_document_is_json_serializable(self, scms_portfolio):
        document = portfolio_to_dict(scms_portfolio)
        json.dumps(document)  # must not raise

    def test_file_round_trip(self, scms_portfolio, tmp_path):
        path = str(tmp_path / "portfolio.json")
        save_portfolio(scms_portfolio, path)
        restored = load_portfolio(path)
        assert restored.average_cost() == pytest.approx(
            scms_portfolio.average_cost()
        )

    def test_single_system_document(self, simple_mcm):
        document = system_to_dict(simple_mcm)
        restored = portfolio_from_dict(document)
        assert len(restored) == 1
        assert restored.systems[0].name == simple_mcm.name


class TestErrors:
    def test_wrong_version(self):
        with pytest.raises(ConfigError):
            portfolio_from_dict({"version": 99})

    def test_missing_sections(self):
        with pytest.raises(ConfigError):
            portfolio_from_dict({"version": 1})

    def test_unknown_module_reference(self):
        document = {
            "version": 1,
            "modules": {},
            "chips": {
                "c0": {"name": "c", "modules": ["m0"], "node": "7nm",
                       "d2d_fraction": 0.0}
            },
            "packages": {},
            "systems": [],
        }
        with pytest.raises(ConfigError):
            portfolio_from_dict(document)

    def test_unknown_integration(self, scms_portfolio):
        document = portfolio_to_dict(scms_portfolio)
        document["systems"][0]["integration"] = "3dsoic"
        with pytest.raises(ConfigError):
            portfolio_from_dict(document)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError):
            load_portfolio(str(path))

    def test_custom_node_serializes_as_v2(self, n7, mcm_tech):
        """Custom-parameter nodes are config data now (schema v2)."""
        from repro.core.module import Module
        from repro.core.system import chiplet

        weird = n7.evolve(name="custom-node")
        chip = chiplet("c", [Module("m", 100.0, weird)], weird)
        system = multichip("s", [chip], mcm_tech)
        document = portfolio_to_dict(Portfolio([system]))
        assert document["version"] == 2
        assert "custom-node" in document["nodes"]
        restored = portfolio_from_dict(document)
        assert restored.systems[0].chips[0].node == weird
