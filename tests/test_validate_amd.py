"""AMD-style validation configuration (Fig. 5 inputs)."""

import pytest

from repro.errors import InvalidParameterError
from repro.validate.amd import (
    AMDConfig,
    build_amd_mcm,
    build_amd_monolithic,
    compare_amd,
)


class TestConfig:
    def test_default_uses_ramp_defect_densities(self):
        config = AMDConfig()
        assert config.compute_node.defect_density == pytest.approx(0.13)
        assert config.io_node.defect_density == pytest.approx(0.12)

    def test_ccd_count(self):
        config = AMDConfig()
        assert config.ccd_count(16) == 2
        assert config.ccd_count(64) == 8

    def test_non_integral_ccd_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            AMDConfig(core_counts=(20,))

    def test_module_areas_exclude_d2d(self):
        config = AMDConfig()
        assert config.core_module().area == pytest.approx(74.0 * 0.9)
        assert config.io_module().area == pytest.approx(416.0 * 0.9)


class TestSystems:
    def test_mcm_chip_count(self):
        config = AMDConfig()
        system = build_amd_mcm(config, 64)
        assert len(system.chips) == 9  # 8 CCDs + IOD

    def test_mcm_ccd_area_matches_public_figure(self):
        config = AMDConfig()
        system = build_amd_mcm(config, 16)
        ccd = system.chips[0]
        assert ccd.area == pytest.approx(74.0, rel=1e-6)

    def test_monolithic_is_one_die(self):
        config = AMDConfig()
        system = build_amd_monolithic(config, 64)
        assert len(system.chips) == 1
        assert not system.chips[0].is_chiplet

    def test_monolithic_io_shrinks_partially(self):
        """The IO module is bigger than a full-scaling port but smaller
        than no scaling at all."""
        config = AMDConfig()
        mono = build_amd_monolithic(config, 16)
        io_area_12nm = config.io_module().area
        core_area = config.core_module().area
        io_area_on_7nm = mono.chips[0].module_area - 2 * core_area
        full_shrink = io_area_12nm * (
            config.io_node.transistor_density
            / config.compute_node.transistor_density
        )
        assert full_shrink < io_area_on_7nm < io_area_12nm

    def test_monolithic_64c_near_amd_public_figure(self):
        """AMD's ISCA'21 hypothetical monolithic 64-core is ~777 mm^2."""
        config = AMDConfig()
        mono = build_amd_monolithic(config, 64)
        assert mono.chips[0].area == pytest.approx(777.0, rel=0.05)


class TestComparison:
    def test_rows_for_each_core_count(self):
        rows = compare_amd()
        assert [row.cores for row in rows] == [16, 24, 32, 48, 64]

    def test_die_saving_grows_with_cores(self):
        rows = compare_amd()
        savings = [row.die_cost_saving for row in rows]
        assert savings == sorted(savings)

    def test_packaging_share_bands(self):
        """The paper's annotations: MCM packaging 24-30%, SoC 5-6%.
        Our substituted packaging parameters land within +/-6 points."""
        for row in compare_amd():
            assert 0.18 <= row.mcm_packaging_share <= 0.40
            assert 0.03 <= row.mono_packaging_share <= 0.14

    def test_mcm_packaging_share_decreases_with_size(self):
        rows = compare_amd()
        shares = [row.mcm_packaging_share for row in rows]
        assert shares == sorted(shares, reverse=True)

    def test_chiplet_wins_everywhere(self):
        for row in compare_amd():
            assert row.mcm_re < row.mono_re
