"""HTTP end-to-end: every endpoint, CLI parity, caching, streaming,
and error mapping — all against an in-process server."""

import json
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.corpus.hashing import registry_hash
from repro.service.app import ServerThread
from repro.service.client import ServiceClient, ServiceError
from repro.service.schemas import (
    CostRequest,
    SearchRequest,
    cost_table,
)
from repro.service.state import evaluate_cost


@pytest.fixture(scope="module")
def service():
    with ServerThread() as url:
        yield ServiceClient(url)


def _post_raw(client: ServiceClient, path: str, body: bytes,
              content_type: str = "application/json"):
    request = urllib.request.Request(
        client.base_url + path, data=body,
        headers={"Content-Type": content_type},
    )
    return urllib.request.urlopen(request, timeout=30)


class TestHealthAndRegistries:
    def test_healthz(self, service):
        payload = service.health()
        assert payload["status"] == "ok"
        assert payload["registry_hash"] == registry_hash()
        assert payload["uptime_seconds"] >= 0
        assert set(payload["cache"]) >= {"entries", "hits", "misses"}
        assert set(payload["batcher"]) >= {"batches", "batched_requests"}

    def test_registries_snapshot(self, service):
        payload = service.registries()
        assert payload["registry_hash"] == registry_hash()
        assert set(payload["registries"]) == {
            "nodes", "technologies", "d2d_interfaces", "yield_models",
            "wafer_geometries",
        }
        assert "7nm" in payload["registries"]["nodes"]

    def test_unknown_route_404(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service._json("GET", "/v1/nope")
        assert excinfo.value.status == 404


class TestCostEndpoint:
    REQUEST = CostRequest(area=640.0, node="5nm", integration="2.5d",
                          chiplets=4, quantity=1e6)

    def test_bit_identical_to_library_path(self, service):
        assert service.cost(self.REQUEST) == evaluate_cost(self.REQUEST)

    def test_bit_identical_to_cli_stdout(self, service, capsys):
        """The HTTP JSON, re-rendered through the shared table, is
        byte-identical to `repro cost` output (floats round-trip JSON
        exactly)."""
        result = service.cost(self.REQUEST)
        assert main([
            "cost", "--area", "640", "--node", "5nm",
            "--integration", "2.5d", "--chiplets", "4",
            "--quantity", "1000000",
        ]) == 0
        assert capsys.readouterr().out.strip() == (
            cost_table(result).render()
        )

    def test_yield_model_override_parity(self, service):
        request = CostRequest(area=500.0, yield_model="poisson",
                              wafer_geometry="450mm")
        assert service.cost(request) == evaluate_cost(request)

    def test_override_changes_the_answer(self, service):
        plain = service.cost(CostRequest(area=500.0))
        priced = service.cost(CostRequest(area=500.0,
                                          yield_model="poisson"))
        assert plain.total != priced.total

    def test_cached_flag_and_hit(self, service):
        request = CostRequest(area=333.0)
        first = service.cost_envelope(request)
        second = service.cost_envelope(request)
        assert first["result"] == second["result"]
        assert second["cached"] is True
        assert first["registry_hash"] == registry_hash()

    def test_cache_keyed_by_value_not_spelling(self, service):
        body = json.dumps({"node": "7nm", "area": 77.5}).encode()
        with _post_raw(service, "/v1/cost", body) as response:
            json.loads(response.read())
        envelope = service.cost_envelope(
            CostRequest.from_dict({"area": 77.5, "node": "7nm"})
        )
        assert envelope["cached"] is True

    def test_unknown_field_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service._json("POST", "/v1/cost", {"area": 1, "bogus": 2})
        assert excinfo.value.status == 400
        assert "bogus" in str(excinfo.value)

    def test_unknown_node_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.cost(CostRequest(area=100.0, node="3nm-imaginary"))
        assert excinfo.value.status == 400

    def test_invalid_json_400(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_raw(service, "/v1/cost", b"{not json")
        assert excinfo.value.code == 400

    def test_missing_body_400(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_raw(service, "/v1/cost", b"")
        assert excinfo.value.code == 400


SCENARIO_DOC = {
    "name": "service-app-test",
    "description": "sweep + figure over the built-in registries",
    "studies": [
        {
            "kind": "partition_sweep",
            "name": "granularity",
            "module_area": 400,
            "node": "7nm",
            "technology": "mcm",
            "chiplet_counts": [1, 2, 3],
        },
    ],
}


class TestScenarioEndpoint:
    def test_matches_cli_run(self, service, capsys, tmp_path):
        result = service.scenario(SCENARIO_DOC)
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(SCENARIO_DOC))
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        header, _, body = out.partition("\n\n")
        assert header == (
            "Scenario: service-app-test — sweep + figure over the "
            "built-in registries"
        )
        assert body.strip() == result.render().strip()

    def test_study_filter(self, service):
        result = service.scenario(SCENARIO_DOC, studies=("granularity",))
        assert [s.name for s in result.studies] == ["granularity"]

    def test_rows_survive_the_wire(self, service):
        result = service.scenario(SCENARIO_DOC)
        rows = result.studies[0].rows
        assert rows and {"chiplets"} <= set(rows[0])

    def test_stream_events(self, service):
        events = list(service.scenario_events(SCENARIO_DOC))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "scenario"
        assert kinds[-1] == "end"
        assert "study" in kinds and "row" in kinds
        studies = [e for e in events if e["event"] == "study"]
        assert studies[0]["name"] == "granularity"
        assert events[-1]["studies"] == len(studies)
        assert events[-1]["registry_hash"] == registry_hash()

    def test_stream_matches_non_stream(self, service):
        result = service.scenario(SCENARIO_DOC)
        events = list(service.scenario_events(SCENARIO_DOC))
        streamed_text = [
            event["text"] for event in events if event["event"] == "study"
        ]
        assert streamed_text == [s.text for s in result.studies]
        streamed_rows = [
            event["row"] for event in events if event["event"] == "row"
        ]
        assert streamed_rows == [
            dict(row) for study in result.studies for row in study.rows
        ]

    def test_bad_document_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.scenario({"name": "x", "studies": [{"kind": "nope"}]})
        assert excinfo.value.status == 400


class TestSearchEndpoint:
    SPACE = {
        "module_areas": [200, 400, 600],
        "nodes": ["7nm"],
        "technologies": ["mcm", "info"],
        "chiplet_counts": [2, 3],
        "d2d_fractions": [0.1],
    }

    def test_matches_run_search(self, service):
        from repro.search.engine import candidate_rows, run_search
        from repro.search.space import space_from_dict

        request = SearchRequest.from_dict({"space": self.SPACE})
        result = service.search(request)
        oracle = run_search(space_from_dict(self.SPACE))
        assert result.n_candidates == oracle.n_candidates
        assert result.objectives == oracle.objectives
        assert [dict(row) for row in result.rows] == candidate_rows(oracle)

    def test_overrides_change_the_answer(self, service):
        plain = service.search(SearchRequest.from_dict({"space": self.SPACE}))
        priced = service.search(
            SearchRequest.from_dict(
                {"space": self.SPACE, "yield_model": "poisson"}
            )
        )
        assert plain.rows != priced.rows

    def test_unknown_override_name_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.search(
                SearchRequest.from_dict(
                    {"space": self.SPACE, "yield_model": "no-such-model"}
                )
            )
        assert excinfo.value.status == 400


class TestCacheInvalidation:
    def test_registry_mutation_drops_the_cache(self):
        from repro.registry.nodes import node_registry, register_node

        with ServerThread() as url:
            client = ServiceClient(url)
            request = CostRequest(area=250.0)
            assert client.cost_envelope(request)["cached"] is False
            assert client.cost_envelope(request)["cached"] is True
            spec = dict(client.registries()["registries"]["nodes"]["7nm"])
            spec["name"] = "7nm-cache-test"
            register_node("7nm-cache-test", spec)
            try:
                envelope = client.cost_envelope(request)
                # Same design point, new registry generation: recomputed.
                assert envelope["cached"] is False
                assert envelope["registry_hash"] == registry_hash()
            finally:
                node_registry().unregister("7nm-cache-test")
