"""Uneven partitioning and Pareto exploration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.module import Module
from repro.errors import InvalidParameterError
from repro.explore.pareto import (
    cost_footprint_frontier,
    design_space,
    pareto_frontier,
)
from repro.explore.uneven import balance_modules, partition_modules
from repro.packaging.interposer import interposer_25d
from repro.packaging.mcm import mcm
from repro.process.catalog import get_node


class TestBalanceModules:
    def test_perfect_split(self):
        assignment = balance_modules([100.0, 100.0], 2)
        assert assignment.bin_areas == (100.0, 100.0)
        assert assignment.imbalance == pytest.approx(1.0)

    def test_all_modules_assigned_once(self):
        assignment = balance_modules([50.0, 40.0, 30.0, 20.0, 10.0], 3)
        assigned = sorted(i for b in assignment.bins for i in b)
        assert assigned == [0, 1, 2, 3, 4]

    def test_k_equals_modules(self):
        assignment = balance_modules([10.0, 20.0, 30.0], 3)
        assert len(assignment.bins) == 3
        assert sorted(assignment.bin_areas) == [10.0, 20.0, 30.0]

    def test_lpt_quality_on_classic_case(self):
        # 3,3,2,2,2 into 2 bins: optimal max is 6.
        assignment = balance_modules([3.0, 3.0, 2.0, 2.0, 2.0], 2)
        assert assignment.max_area == pytest.approx(6.0)

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            balance_modules([], 2)
        with pytest.raises(InvalidParameterError):
            balance_modules([1.0], 0)
        with pytest.raises(InvalidParameterError):
            balance_modules([1.0], 2)
        with pytest.raises(InvalidParameterError):
            balance_modules([0.0], 1)

    @settings(max_examples=50, deadline=None)
    @given(
        areas=st.lists(
            st.floats(min_value=1.0, max_value=100.0), min_size=2, max_size=12
        ),
        k=st.integers(min_value=1, max_value=4),
    )
    def test_list_scheduling_bound(self, areas, k):
        """Graham's list-scheduling bound holds for LPT:
        max bin <= mean + (1 - 1/k) * largest module."""
        if k > len(areas):
            return
        assignment = balance_modules(areas, k)
        bound = sum(areas) / k + (1.0 - 1.0 / k) * max(areas)
        assert assignment.max_area <= bound + 1e-9
        assert sum(assignment.bin_areas) == pytest.approx(sum(areas))


class TestPartitionModules:
    def test_builds_system_with_k_chips(self, n5):
        modules = [Module(f"m{i}", 100.0 + i * 20, n5) for i in range(6)]
        system = partition_modules("u", modules, n5, 3, mcm())
        assert len(system.chips) == 3
        assert system.module_area == pytest.approx(
            sum(m.area for m in modules)
        )

    def test_chiplets_balanced(self, n5):
        modules = [Module(f"m{i}", 100.0, n5) for i in range(4)]
        system = partition_modules("u", modules, n5, 2, mcm())
        areas = [chip.module_area for chip in system.chips]
        assert areas[0] == pytest.approx(areas[1])


class TestParetoFrontier:
    def test_single_objective_is_min(self):
        items = [3.0, 1.0, 2.0]
        frontier = pareto_frontier(items, [lambda x: x])
        assert frontier == [1.0]

    def test_non_dominated_kept(self):
        # (cost, footprint): (1, 3) and (3, 1) trade off; (4, 4) dominated.
        items = [(1.0, 3.0), (3.0, 1.0), (4.0, 4.0)]
        frontier = pareto_frontier(
            items, [lambda p: p[0], lambda p: p[1]]
        )
        assert (1.0, 3.0) in frontier
        assert (3.0, 1.0) in frontier
        assert (4.0, 4.0) not in frontier

    def test_duplicates_survive(self):
        items = [(1.0, 1.0), (1.0, 1.0)]
        frontier = pareto_frontier(items, [lambda p: p[0], lambda p: p[1]])
        assert len(frontier) == 2

    def test_no_objectives_rejected(self):
        with pytest.raises(InvalidParameterError):
            pareto_frontier([1], [])


class TestDesignSpace:
    def test_contains_soc_and_all_combinations(self, n5):
        points = design_space(
            800.0, n5, 5e6, [mcm(), interposer_25d()], chiplet_counts=(2, 3)
        )
        labels = {point.label for point in points}
        assert "SoC x1" in labels
        assert "MCM x2" in labels
        assert "2.5D x3" in labels
        assert len(points) == 5

    def test_frontier_is_subset(self, n5):
        points = design_space(800.0, n5, 5e6, [mcm()], chiplet_counts=(2, 3))
        frontier = cost_footprint_frontier(points)
        assert set(id(p) for p in frontier) <= set(id(p) for p in points)
        assert frontier

    def test_soc_on_footprint_frontier(self, n5):
        """The single-die package always has the smallest footprint."""
        points = design_space(800.0, n5, 5e6, [mcm()], chiplet_counts=(2,))
        frontier = cost_footprint_frontier(points)
        assert any(point.scheme == "SoC" for point in frontier)

    def test_invalid_quantity(self, n5):
        with pytest.raises(InvalidParameterError):
            design_space(800.0, n5, 0.0, [mcm()])


class TestMirroredChiplets:
    def test_mirror_doubles_chip_designs(self):
        from repro.reuse.scms import SCMSConfig, build_scms

        symmetric = build_scms(SCMSConfig(symmetrical=True), mcm())
        mirrored = build_scms(SCMSConfig(symmetrical=False), mcm())
        sym_chips = {
            id(chip)
            for system in symmetric.chiplet.systems
            for chip, _n in system.unique_chips()
        }
        mir_chips = {
            id(chip)
            for system in mirrored.chiplet.systems
            for chip, _n in system.unique_chips()
        }
        assert len(sym_chips) == 1
        assert len(mir_chips) == 2

    def test_mirror_raises_nre_not_re(self):
        from repro.core.re_cost import compute_re_cost
        from repro.reuse.scms import SCMSConfig, build_scms

        symmetric = build_scms(SCMSConfig(symmetrical=True), mcm())
        mirrored = build_scms(SCMSConfig(symmetrical=False), mcm())
        # Same recurring cost (identical silicon)...
        for sym, mir in zip(
            symmetric.chiplet.systems, mirrored.chiplet.systems
        ):
            assert compute_re_cost(mir).total == pytest.approx(
                compute_re_cost(sym).total
            )
        # ...but more NRE for the 4X grade (two chip designs).
        sym_nre = symmetric.chiplet.total_nre().chips
        mir_nre = mirrored.chiplet.total_nre().chips
        assert mir_nre == pytest.approx(2.0 * sym_nre)
