"""Integration technologies: areas, cost components, NRE, sizing."""

import pytest

from repro.errors import EmptySystemError, InvalidParameterError
from repro.packaging.assembly import AssemblyFlow
from repro.packaging.info import info
from repro.packaging.interposer import interposer_25d
from repro.packaging.mcm import mcm
from repro.packaging.soc import soc_package
from repro.packaging.substrate import OrganicSubstrate


class TestSubstrate:
    def test_cost_scales_with_area_and_layers(self):
        substrate = OrganicSubstrate(layers=10, cost_per_mm2_per_layer=0.001)
        assert substrate.cost(1000.0) == pytest.approx(10.0)
        assert substrate.with_layers(5).cost(1000.0) == pytest.approx(5.0)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            OrganicSubstrate(layers=0)
        with pytest.raises(InvalidParameterError):
            OrganicSubstrate(layers=4).cost(-1.0)


class TestSoCPackage:
    def test_holds_exactly_one_die(self):
        package = soc_package()
        assert package.max_chips == 1
        assert package.supports_chip_count(1)
        assert not package.supports_chip_count(2)
        with pytest.raises(InvalidParameterError):
            package.package_area([100.0, 100.0])

    def test_package_area_factor(self):
        package = soc_package()
        assert package.package_area([100.0]) == pytest.approx(
            100.0 * package.substrate_area_factor
        )

    def test_packaging_cost_components_nonnegative(self):
        cost = soc_package().packaging_cost([400.0], kgd_cost=300.0)
        assert cost.raw_package > 0
        assert cost.package_defects >= 0
        assert cost.wasted_kgd >= 0

    def test_empty_chip_list_rejected(self):
        with pytest.raises(EmptySystemError):
            soc_package().package_area([])

    def test_nre_affine_in_area(self):
        package = soc_package()
        small = package.package_nre([100.0])
        large = package.package_nre([200.0])
        assert large > small
        assert small > package.nre_fixed


class TestMCM:
    def test_area_sums_chips(self):
        tech = mcm()
        assert tech.package_area([100.0, 200.0]) == pytest.approx(
            300.0 * tech.substrate_area_factor
        )

    def test_more_chips_more_waste(self):
        tech = mcm()
        two = tech.packaging_cost([100.0, 100.0], kgd_cost=100.0)
        four = tech.packaging_cost([50.0] * 4, kgd_cost=100.0)
        assert four.wasted_kgd > two.wasted_kgd

    def test_sized_for_larger_package(self):
        tech = mcm()
        plain = tech.packaging_cost([100.0], kgd_cost=50.0)
        oversized = tech.packaging_cost(
            [100.0], kgd_cost=50.0, sized_for=[100.0, 100.0, 100.0, 100.0]
        )
        assert oversized.raw_package > plain.raw_package
        # Bonding yields follow the actual single chip in both cases.
        assert oversized.wasted_kgd == pytest.approx(
            plain.wasted_kgd, rel=1e-9
        )

    def test_mcm_has_more_layers_than_soc(self):
        # The paper's "growth factor on substrate RE cost".
        assert mcm().substrate.layers > soc_package().substrate.layers


class TestInFO:
    def test_rdl_area_factor(self):
        tech = info()
        assert tech.rdl_area([100.0, 100.0]) == pytest.approx(
            200.0 * tech.rdl_area_factor
        )

    def test_chip_first_wastes_more_kgd(self):
        chip_areas = [300.0, 300.0]
        kgd = 500.0
        last = info(flow=AssemblyFlow.CHIP_LAST).packaging_cost(chip_areas, kgd)
        first = info(flow=AssemblyFlow.CHIP_FIRST).packaging_cost(chip_areas, kgd)
        assert first.wasted_kgd > last.wasted_kgd

    def test_with_flow_returns_copy(self):
        tech = info()
        first = tech.with_flow(AssemblyFlow.CHIP_FIRST)
        assert first.flow is AssemblyFlow.CHIP_FIRST
        assert tech.flow is AssemblyFlow.CHIP_LAST

    def test_bigger_rdl_for_more_silicon(self):
        tech = info()
        small = tech.packaging_cost([100.0], kgd_cost=10.0)
        large = tech.packaging_cost([500.0, 500.0], kgd_cost=10.0)
        assert large.raw_package > small.raw_package


class TestInterposer:
    def test_interposer_area_factor(self):
        tech = interposer_25d()
        assert tech.interposer_area([400.0, 400.0]) == pytest.approx(
            800.0 * tech.interposer_area_factor
        )

    def test_interposer_costs_more_than_mcm(self):
        # The paper's Fig. 1 cost ordering: 2.5D > InFO > MCM.
        chip_areas = [400.0, 400.0]
        kgd = 400.0
        mcm_cost = mcm().packaging_cost(chip_areas, kgd).total
        info_cost = info().packaging_cost(chip_areas, kgd).total
        interposer_cost = interposer_25d().packaging_cost(chip_areas, kgd).total
        assert mcm_cost < info_cost < interposer_cost

    def test_large_interposer_suffers_poor_yield(self):
        """Package-defect share grows with interposer area (the paper's
        'with a monolithic interposer, advanced packaging technologies
        still suffer from poor yield'.)"""
        tech = interposer_25d()
        small = tech.packaging_cost([200.0], kgd_cost=100.0)
        large = tech.packaging_cost([500.0, 500.0], kgd_cost=100.0)
        assert (
            large.package_defects / large.raw_package
            > small.package_defects / small.raw_package
        )

    def test_packaging_nre_ordering(self):
        # Advanced packages cost more to design (Kp and Cp both larger).
        chip_areas = [400.0, 400.0]
        assert (
            soc_package().package_nre([800.0])
            < mcm().package_nre(chip_areas)
            < info().package_nre(chip_areas)
            < interposer_25d().package_nre(chip_areas)
        )

    def test_factory_overrides(self):
        tech = interposer_25d(chip_attach_yield=0.95)
        assert tech.chip_attach_yield == 0.95
