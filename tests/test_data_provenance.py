"""Data tables: completeness and provenance coverage."""

from repro.data.integration import INTEGRATION_COMPARISON
from repro.data.nre_costs import DESIGN_COST_INDEX, MASK_SET_COSTS
from repro.data.packaging_costs import PACKAGING_DEFAULTS
from repro.data.wafer_prices import WAFER_PRICE_SOURCES, WAFER_PRICES
from repro.process.catalog import NODES


def test_every_wafer_price_has_a_source():
    assert set(WAFER_PRICE_SOURCES) == set(WAFER_PRICES)


def test_every_catalog_node_has_all_tables():
    for name in NODES:
        assert name in WAFER_PRICES, f"{name} missing wafer price"
        assert name in DESIGN_COST_INDEX, f"{name} missing design index"
        assert name in MASK_SET_COSTS, f"{name} missing mask cost"


def test_substituted_parameters_flagged():
    """Everything not from the CSET table says so in its source note."""
    for name, source in WAFER_PRICE_SOURCES.items():
        assert ("CSET" in source) or ("substituted" in source) or (
            "projection" in source
        ), f"{name}: source note must name CSET or mark a substitution"


def test_packaging_defaults_schema():
    required = {
        "substrate_layers",
        "substrate_area_factor",
        "fixed_assembly_cost",
        "chip_attach_yield",
        "final_yield",
        "nre_per_mm2",
        "nre_fixed",
    }
    carrier_required = {"carrier_attach_yield"}
    for tech in ("soc", "mcm"):
        assert required <= set(PACKAGING_DEFAULTS[tech])
    for tech in ("info", "interposer"):
        assert (required - {"final_yield"}) <= set(PACKAGING_DEFAULTS[tech])
        assert carrier_required <= set(PACKAGING_DEFAULTS[tech])


def test_packaging_yields_are_probabilities():
    for tech, params in PACKAGING_DEFAULTS.items():
        for key, value in params.items():
            if key.endswith("yield"):
                assert 0.0 < value <= 1.0, f"{tech}.{key}"


def test_fig1_comparison_covers_three_technologies():
    names = [profile.name for profile in INTEGRATION_COMPARISON]
    assert names == ["MCM", "InFO", "2.5D"]
    # The paper's Fig. 1 axes: cost rank rises as line space shrinks.
    spaces = [p.line_space_um for p in INTEGRATION_COMPARISON]
    ranks = [p.relative_cost_rank for p in INTEGRATION_COMPARISON]
    assert spaces == sorted(spaces, reverse=True)
    assert ranks == sorted(ranks)


def test_describe_lines_render():
    for profile in INTEGRATION_COMPARISON:
        line = profile.describe()
        assert profile.name in line
        assert "Gbps" in line
