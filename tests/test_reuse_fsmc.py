"""FSMC scheme: collocation combinatorics and reuse economics."""

import math

import pytest

from repro.errors import InvalidParameterError
from repro.packaging.mcm import mcm
from repro.reuse.fsmc import (
    FSMCConfig,
    build_fsmc,
    collocation_count,
    enumerate_collocations,
)


class TestCombinatorics:
    @pytest.mark.parametrize(
        "n,k,expected",
        [
            (2, 2, 2 + 3),
            (4, 2, 4 + 10),
            (4, 3, 4 + 10 + 20),
            (4, 4, 4 + 10 + 20 + 35),
            (6, 4, 6 + 21 + 56 + 126),
            (1, 1, 1),
            (1, 5, 5),
        ],
    )
    def test_closed_form(self, n, k, expected):
        assert collocation_count(n, k) == expected

    @pytest.mark.parametrize("n,k", [(2, 2), (3, 3), (4, 4), (6, 4), (5, 2)])
    def test_enumeration_matches_closed_form(self, n, k):
        assert len(enumerate_collocations(n, k)) == collocation_count(n, k)

    def test_enumeration_is_multisets(self):
        collocations = enumerate_collocations(3, 2)
        assert (0,) in collocations
        assert (0, 0) in collocations
        assert (0, 1) in collocations
        assert (1, 0) not in collocations  # canonical (sorted) form only

    def test_enumeration_unique(self):
        collocations = enumerate_collocations(6, 4)
        assert len(set(collocations)) == len(collocations)

    def test_paper_formula_term(self):
        # One term of the paper's sum: C(n+i-1, i).
        assert math.comb(6 + 4 - 1, 4) == 126

    def test_invalid_arguments(self):
        with pytest.raises(InvalidParameterError):
            collocation_count(0, 2)
        with pytest.raises(InvalidParameterError):
            enumerate_collocations(2, 0)


@pytest.fixture(scope="module")
def study():
    return build_fsmc(FSMCConfig(n_chiplets=3, k_sockets=2), mcm())


class TestStructure:
    def test_system_count(self, study):
        assert study.system_count == collocation_count(3, 2)
        assert len(study.soc) == study.system_count

    def test_multichip_shares_one_package(self, study):
        designs = {id(system.package) for system in study.multichip.systems}
        assert len(designs) == 1

    def test_chip_designs_limited_to_n(self, study):
        chips = {
            id(chip)
            for system in study.multichip.systems
            for chip, _n in system.unique_chips()
        }
        assert len(chips) == 3

    def test_soc_chip_designs_one_per_system(self, study):
        chips = {
            id(system.chips[0]) for system in study.soc.systems
        }
        assert len(chips) == study.system_count


class TestEconomics:
    def test_multichip_nre_flat_in_system_count(self):
        """Adding collocations does not add multi-chip designs, so the
        portfolio NRE stays flat while SoC NRE grows."""
        small = build_fsmc(FSMCConfig(n_chiplets=4, k_sockets=2), mcm())
        large = build_fsmc(FSMCConfig(n_chiplets=4, k_sockets=3), mcm())
        assert large.multichip.total_nre().chips == pytest.approx(
            small.multichip.total_nre().chips
        )
        assert large.soc.total_nre().chips > small.soc.total_nre().chips

    def test_amortized_nre_shrinks_with_reuse(self):
        """The paper: 'the more chiplets are reused, the more benefits
        from NRE cost amortization'."""
        low = build_fsmc(FSMCConfig(n_chiplets=2, k_sockets=2), mcm())
        high = build_fsmc(FSMCConfig(n_chiplets=4, k_sockets=4), mcm())

        def avg_nre(portfolio):
            return sum(
                portfolio.amortized_nre(system).total * system.quantity
                for system in portfolio.systems
            ) / portfolio.total_quantity

        assert avg_nre(high.multichip) < avg_nre(low.multichip)

    def test_multichip_beats_soc_at_high_reuse(self):
        study = build_fsmc(FSMCConfig(n_chiplets=4, k_sockets=4), mcm())
        assert (
            study.multichip.average_cost() < study.soc.average_cost()
        )
