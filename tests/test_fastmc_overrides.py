"""Fast-path Monte Carlo with die-cost overrides and the scalar fallback.

Two contracts:

* ``method="fast"`` accepts registry-named yield models / wafer
  geometries (``die_cost_fn``) and stays draw-for-draw bit-identical
  to the object-rebuilding naive sampler under them;
* with numpy absent, the fast and naive samplers still produce the
  identical draw stream from the same seed — the scalar fallback is
  the single per-call code path, not a reimplementation.
"""

import random

import pytest

from repro.config import ConfigRegistries
from repro.engine import fastmc
from repro.engine import rng as engine_rng
from repro.engine.costengine import CostEngine
from repro.engine.fastmc import MonteCarloPlan, sample_re_costs
from repro.errors import InvalidParameterError
from repro.explore.montecarlo import monte_carlo_cost, monte_carlo_cost_naive
from repro.explore.partition import partition_monolith, soc_reference
from repro.packaging.interposer import interposer_25d
from repro.packaging.mcm import mcm
from repro.process.catalog import get_node
from repro.yieldmodel.sampling import DefectDensityPrior


def _systems():
    return [
        soc_reference(400.0, get_node("7nm")),
        partition_monolith(800.0, get_node("5nm"), 4, interposer_25d()),
        partition_monolith(600.0, get_node("7nm"), 3, mcm()),
    ]


def _override(yield_model="poisson", wafer_geometry="300mm"):
    return ConfigRegistries().die_cost_fn(yield_model, wafer_geometry)


class TestFastWithOverrides:
    @pytest.mark.parametrize("system", _systems(), ids=lambda s: s.name)
    def test_fast_matches_naive_under_override(self, system):
        override = _override()
        fast = monte_carlo_cost(
            system, draws=120, sigma=0.2, seed=11, method="fast",
            die_cost_fn=override,
        )
        naive = monte_carlo_cost(
            system, draws=120, sigma=0.2, seed=11, method="naive",
            die_cost_fn=override,
        )
        assert fast.samples == naive.samples

    def test_auto_with_override_matches_naive(self):
        system = partition_monolith(500.0, get_node("7nm"), 2, mcm())
        override = _override("murphy", "")
        auto = monte_carlo_cost(
            system, draws=90, seed=3, die_cost_fn=override
        )
        naive = monte_carlo_cost(
            system, draws=90, seed=3, method="naive", die_cost_fn=override
        )
        assert auto.samples == naive.samples

    def test_override_changes_the_distribution(self):
        system = partition_monolith(600.0, get_node("5nm"), 3, mcm())
        base = monte_carlo_cost(system, draws=60, seed=1, method="fast")
        priced = monte_carlo_cost(
            system, draws=60, seed=1, method="fast",
            die_cost_fn=_override("poisson", "300mm"),
        )
        assert base.samples != priced.samples

    def test_geometry_override_reaches_compile_time_raw(self):
        """The override prices the compile-time raw cost too: a wafer
        with edge exclusion fits fewer dies, so raw cost rises."""
        from repro.registry.geometries import wafer_geometry_registry

        registry = wafer_geometry_registry().child()
        registry.register_spec(
            "lossy", {"base": "300mm", "edge_exclusion": 5.0}
        )
        registries = ConfigRegistries(geometries=registry)
        system = soc_reference(400.0, get_node("7nm"))
        plain = MonteCarloPlan.compile(system)
        priced = MonteCarloPlan.compile(
            system, die_cost_fn=registries.die_cost_fn("", "lossy")
        )
        assert priced.terms[0].raw > plain.terms[0].raw

    def test_metric_with_override_still_rejected(self):
        system = soc_reference(300.0, get_node("7nm"))
        with pytest.raises(InvalidParameterError, match="metric"):
            monte_carlo_cost(
                system, draws=5, metric=lambda s: 1.0,
                die_cost_fn=_override(),
            )

    def test_evaluate_batch_rejects_override_plans(self):
        pytest.importorskip("numpy")
        system = partition_monolith(500.0, get_node("7nm"), 2, mcm())
        plan = MonteCarloPlan.compile(system, die_cost_fn=_override())
        with pytest.raises(InvalidParameterError, match="override"):
            plan.evaluate_batch([[1.0]])

    def test_engine_monte_carlo_front_end(self):
        system = partition_monolith(800.0, get_node("5nm"), 4, mcm())
        engine = CostEngine()
        samples = engine.monte_carlo(system, draws=80, sigma=0.25, seed=9)
        naive = monte_carlo_cost_naive(system, draws=80, sigma=0.25, seed=9)
        assert tuple(samples) == naive.samples
        override = _override()
        priced = engine.monte_carlo(
            system, draws=40, seed=2, die_cost_fn=override
        )
        priced_naive = monte_carlo_cost(
            system, draws=40, seed=2, method="naive", die_cost_fn=override
        )
        assert tuple(priced) == priced_naive.samples


class TestScalarFallbackStream:
    """Satellite regression: identical streams with numpy absent."""

    def _force_scalar(self, monkeypatch):
        monkeypatch.setattr(fastmc, "_np", None)
        monkeypatch.setattr(engine_rng, "_np", None)

    @pytest.mark.parametrize("system", _systems()[:2], ids=lambda s: s.name)
    def test_fast_equals_naive_without_numpy(self, system, monkeypatch):
        self._force_scalar(monkeypatch)
        fast = sample_re_costs(system, draws=150, sigma=0.15, seed=7)
        naive = monte_carlo_cost_naive(system, draws=150, sigma=0.15, seed=7)
        assert tuple(fast) == naive.samples

    def test_fallback_equals_vectorized_samples(self, monkeypatch):
        """numpy presence changes speed only, never a draw."""
        system = partition_monolith(700.0, get_node("5nm"), 5, mcm())
        vectorized = sample_re_costs(system, draws=400, sigma=0.3, seed=5)
        self._force_scalar(monkeypatch)
        scalar = sample_re_costs(system, draws=400, sigma=0.3, seed=5)
        assert scalar == vectorized

    def test_fallback_with_override_without_numpy(self, monkeypatch):
        self._force_scalar(monkeypatch)
        system = partition_monolith(500.0, get_node("7nm"), 2, mcm())
        override = _override()
        fast = sample_re_costs(system, draws=100, seed=4, die_cost_fn=override)
        naive = monte_carlo_cost(
            system, draws=100, seed=4, method="naive", die_cost_fn=override
        )
        assert tuple(fast) == naive.samples

    def test_sample_loop_shares_the_prior_stream(self, monkeypatch):
        """The scalar loop draws through the same single code path the
        vectorized sampler uses (repro.engine.rng.sample_prior)."""
        self._force_scalar(monkeypatch)
        system = partition_monolith(600.0, get_node("7nm"), 3, mcm())
        plan = MonteCarloPlan.compile(system)
        prior = DefectDensityPrior(mode=1.0, sigma=0.15)
        rng = random.Random(8)
        samples = fastmc._sample_loop(plan, rng, prior, 50)
        oracle = random.Random(8)
        expected = []
        for _ in range(50):
            scales = {
                name: prior.sample(oracle) for name in plan.node_names
            }
            expected.append(plan.evaluate(scales))
        assert samples == expected
        assert rng.getstate() == oracle.getstate()
