"""Time-phased roadmap costing."""

import pytest

from repro.core.re_cost import compute_re_cost
from repro.errors import InvalidParameterError
from repro.explore.partition import partition_monolith, soc_reference
from repro.explore.roadmap import (
    RoadmapAssumptions,
    compare_on_roadmap,
    ramp_volumes,
    roadmap_cost,
)
from repro.packaging.mcm import mcm
from repro.process.catalog import get_node
from repro.process.defects import ramp_curve_for


@pytest.fixture
def flat_roadmap():
    return RoadmapAssumptions(periods=4, volumes=(1e5,) * 4)


class TestAssumptions:
    def test_volume_length_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            RoadmapAssumptions(periods=3, volumes=(1.0, 2.0))

    def test_negative_volume_rejected(self):
        with pytest.raises(InvalidParameterError):
            RoadmapAssumptions(periods=1, volumes=(-1.0,))

    def test_invalid_erosion_rejected(self):
        with pytest.raises(InvalidParameterError):
            RoadmapAssumptions(
                periods=1, volumes=(1.0,), wafer_price_erosion=0.0
            )
        with pytest.raises(InvalidParameterError):
            RoadmapAssumptions(
                periods=1, volumes=(1.0,), wafer_price_erosion=1.1
            )

    def test_total_volume(self, flat_roadmap):
        assert flat_roadmap.total_volume == pytest.approx(4e5)


class TestRampVolumes:
    def test_conserves_total(self):
        volumes = ramp_volumes(1e6, 8)
        assert sum(volumes) == pytest.approx(1e6)
        assert len(volumes) == 8

    def test_default_shape_ramps_up(self):
        volumes = ramp_volumes(1e6, 8)
        assert volumes[0] < volumes[-1]

    def test_custom_shape(self):
        volumes = ramp_volumes(100.0, 4, shape=lambda t: 1.0)
        assert volumes == (25.0,) * 4

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            ramp_volumes(-1.0, 4)
        with pytest.raises(InvalidParameterError):
            ramp_volumes(1.0, 0)
        with pytest.raises(InvalidParameterError):
            ramp_volumes(1.0, 2, shape=lambda t: 0.0)


class TestRoadmapCost:
    def test_static_roadmap_matches_point_model(self, flat_roadmap, n7):
        """No learning, no erosion: every period equals the point cost."""
        system = soc_reference(500.0, n7)
        result = roadmap_cost(system, flat_roadmap)
        point = compute_re_cost(system).total
        for period in result.periods:
            assert period.re_per_unit == pytest.approx(point)
        assert result.re_spend == pytest.approx(point * 4e5)

    def test_learning_reduces_cost_over_time(self, n7):
        assumptions = RoadmapAssumptions(
            periods=6,
            volumes=(1e5,) * 6,
            learning={"7nm": ramp_curve_for(n7, initial_density=0.13)},
        )
        result = roadmap_cost(soc_reference(500.0, n7), assumptions)
        costs = [period.re_per_unit for period in result.periods]
        assert costs == sorted(costs, reverse=True)

    def test_price_erosion_reduces_cost(self, n7):
        assumptions = RoadmapAssumptions(
            periods=4, volumes=(1e5,) * 4, wafer_price_erosion=0.95
        )
        result = roadmap_cost(soc_reference(500.0, n7), assumptions)
        costs = [period.re_per_unit for period in result.periods]
        assert costs == sorted(costs, reverse=True)
        assert costs[-1] == pytest.approx(costs[0] * 0.95**3, rel=0.02)

    def test_program_cost_includes_nre(self, flat_roadmap, n7):
        system = soc_reference(500.0, n7)
        result = roadmap_cost(system, flat_roadmap)
        assert result.program_cost == pytest.approx(
            result.re_spend + result.nre_total
        )
        assert result.average_unit_cost == pytest.approx(
            result.program_cost / result.total_volume
        )

    def test_nre_override(self, flat_roadmap, n7):
        system = soc_reference(500.0, n7)
        result = roadmap_cost(system, flat_roadmap, nre_override=42.0)
        assert result.nre_total == 42.0


class TestCompare:
    def test_sorted_by_program_cost(self, n7):
        assumptions = RoadmapAssumptions(
            periods=8,
            volumes=ramp_volumes(4e6, 8),
            learning={"7nm": ramp_curve_for(n7, initial_density=0.13)},
        )
        results = compare_on_roadmap(
            [
                soc_reference(700.0, n7),
                partition_monolith(700.0, n7, 2, mcm()),
            ],
            assumptions,
        )
        costs = [result.program_cost for result in results]
        assert costs == sorted(costs)

    def test_empty_rejected(self, flat_roadmap):
        with pytest.raises(InvalidParameterError):
            compare_on_roadmap([], flat_roadmap)

    def test_learning_shrinks_chiplet_advantage(self, n7):
        """The paper: 'as the yield of 7nm technology improves ... the
        advantage is further smaller'."""
        system_soc = soc_reference(700.0, n7)
        system_mcm = partition_monolith(700.0, n7, 2, mcm())

        def advantage(density: float) -> float:
            early = RoadmapAssumptions(
                periods=1,
                volumes=(1.0,),
                learning={
                    "7nm": ramp_curve_for(n7, initial_density=density)
                },
            )
            soc_cost = roadmap_cost(system_soc, early).periods[0].re_per_unit
            mcm_cost = roadmap_cost(system_mcm, early).periods[0].re_per_unit
            return 1.0 - mcm_cost / soc_cost

        assert advantage(0.13) > advantage(0.09)
