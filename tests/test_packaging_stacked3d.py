"""3D stacking integration (extension beyond the paper)."""

import pytest

from repro.core.re_cost import compute_re_cost
from repro.errors import InvalidParameterError
from repro.explore.partition import partition_monolith
from repro.packaging.interposer import interposer_25d
from repro.packaging.mcm import mcm
from repro.packaging.stacked3d import Stacked3D, stacked_3d
from repro.process.catalog import get_node


class TestGeometry:
    def test_footprint_follows_base_die_only(self):
        tech = stacked_3d()
        single = tech.package_area([400.0])
        stacked = tech.package_area([400.0, 300.0, 200.0])
        assert stacked == single

    def test_footprint_smaller_than_mcm(self):
        """The 3D selling point: board footprint of one die."""
        chips = [400.0, 400.0]
        assert stacked_3d().package_area(chips) < mcm().package_area(chips)

    def test_oversized_stacked_die_rejected(self):
        tech = stacked_3d()
        with pytest.raises(InvalidParameterError):
            tech.package_area([300.0, 400.0])  # 400 cannot sit on 300
        # The first chip is the base, so order matters.
        assert tech.package_area([500.0, 300.0]) == pytest.approx(
            500.0 * tech.substrate_area_factor
        )

    def test_equal_dies_stackable(self):
        assert stacked_3d().package_area([400.0, 400.0]) > 0


class TestCost:
    def test_single_die_has_no_stack_loss(self):
        tech = stacked_3d()
        cost = tech.packaging_cost([400.0], kgd_cost=300.0)
        # Only the final-attach yield applies.
        expected_retries = 1.0 / tech.final_yield - 1.0
        assert cost.wasted_kgd == pytest.approx(300.0 * expected_retries)

    def test_waste_grows_with_stack_height(self):
        tech = stacked_3d()
        wastes = [
            tech.packaging_cost([400.0] * n, kgd_cost=300.0).wasted_kgd
            for n in (1, 2, 3, 4)
        ]
        assert wastes == sorted(wastes)

    def test_tsv_premium_scales_with_base(self):
        tech = stacked_3d()
        small = tech.packaging_cost([200.0, 200.0], kgd_cost=0.0)
        large = tech.packaging_cost([600.0, 600.0], kgd_cost=0.0)
        assert large.raw_package > small.raw_package

    def test_better_bond_yield_cheaper(self):
        good = stacked_3d(stack_bond_yield=0.995)
        poor = stacked_3d(stack_bond_yield=0.95)
        chips = [400.0, 400.0]
        assert (
            good.packaging_cost(chips, 300.0).total
            < poor.packaging_cost(chips, 300.0).total
        )

    def test_sized_for_reuse(self):
        tech = stacked_3d()
        plain = tech.packaging_cost([200.0], kgd_cost=50.0)
        oversized = tech.packaging_cost(
            [200.0], kgd_cost=50.0, sized_for=[400.0, 400.0]
        )
        assert oversized.raw_package > plain.raw_package

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            stacked_3d(stack_bond_yield=0.0)
        with pytest.raises(InvalidParameterError):
            stacked_3d(tsv_cost_per_mm2=-1.0)


class TestSystemLevel:
    def test_usable_as_integration_tech(self, n5):
        system = partition_monolith(800.0, n5, 2, stacked_3d())
        re = compute_re_cost(system)
        assert re.total > 0

    def test_3d_footprint_beats_25d_cost_depends(self, n5):
        """3D wins on footprint; cost ranking depends on yields."""
        chips = partition_monolith(800.0, n5, 2, stacked_3d())
        chips_25d = partition_monolith(800.0, n5, 2, interposer_25d())
        assert (
            chips.integration.package_area(chips.chip_areas)
            < chips_25d.integration.package_area(chips_25d.chip_areas)
        )

    def test_nre_includes_tsv_codevelopment(self):
        assert stacked_3d().package_nre([400.0, 400.0]) > mcm().package_nre(
            [400.0, 400.0]
        ) - mcm().nre_fixed
