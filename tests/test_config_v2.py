"""Config schema v2: custom nodes/technologies and v1 back-compat."""

import json

import pytest

from repro.config import (
    FORMAT_VERSION,
    build_registries,
    load_portfolio,
    portfolio_from_dict,
    portfolio_to_dict,
    save_portfolio,
)
from repro.core.chip import Chip
from repro.core.module import Module
from repro.core.package_design import PackageDesign
from repro.core.system import multichip
from repro.d2d.overhead import BandwidthOverhead, FractionOverhead
from repro.errors import ConfigError
from repro.process.catalog import get_node
from repro.registry import d2d_registry, technology_registry
from repro.reuse.portfolio import Portfolio


@pytest.fixture
def custom_portfolio():
    """Custom node + parameterized technology + bandwidth D2D policy."""
    node = get_node("7nm").evolve(defect_density=0.2)
    tech = technology_registry().create("2.5d", chip_attach_yield=0.9)
    phy = d2d_registry().get("parallel-interposer")
    module = Module("blk", 120.0, node)
    compute = Chip.of("compute", (module,), node, d2d=FractionOverhead(0.1))
    io_chip = Chip.of(
        "io",
        (Module("io-blk", 80.0, get_node("14nm")),),
        get_node("14nm"),
        d2d=BandwidthOverhead(bandwidth_gbps=300.0, interface=phy),
    )
    package = PackageDesign.for_chips(
        "big-pkg", tech, (compute.area, compute.area, io_chip.area)
    )
    small = multichip("small", [compute, io_chip], tech, quantity=1e5,
                      package=package)
    large = multichip("large", [compute, compute, io_chip], tech,
                      quantity=5e4, package=package)
    return Portfolio([small, large])


class TestV2RoundTrip:
    def test_emits_version_2_with_custom_sections(self, custom_portfolio):
        document = portfolio_to_dict(custom_portfolio)
        assert document["version"] == 2
        assert document["nodes"]          # the evolved 7nm node
        assert document["technologies"]   # the parameterized 2.5d
        json.dumps(document)              # JSON-clean

    def test_round_trip_preserves_costs_exactly(self, custom_portfolio):
        restored = portfolio_from_dict(portfolio_to_dict(custom_portfolio))
        for original, rebuilt in zip(custom_portfolio.systems, restored.systems):
            original_cost = custom_portfolio.amortized_cost(original)
            rebuilt_cost = restored.amortized_cost(rebuilt)
            assert rebuilt_cost.total == pytest.approx(
                original_cost.total, rel=1e-12
            )
            assert rebuilt_cost.re_total == pytest.approx(
                original_cost.re_total, rel=1e-12
            )

    def test_round_trip_preserves_values(self, custom_portfolio):
        restored = portfolio_from_dict(portfolio_to_dict(custom_portfolio))
        chip = restored.systems[0].chips[0]
        assert chip.node.defect_density == 0.2
        assert restored.systems[0].integration.chip_attach_yield == 0.9
        io_chip = restored.systems[0].chips[1]
        assert isinstance(io_chip.d2d, BandwidthOverhead)
        assert io_chip.d2d.bandwidth_gbps == 300.0

    def test_round_trip_preserves_sharing(self, custom_portfolio):
        restored = portfolio_from_dict(portfolio_to_dict(custom_portfolio))
        packages = {id(system.package) for system in restored.systems}
        assert len(packages) == 1
        techs = {id(system.integration) for system in restored.systems}
        assert len(techs) == 1

    def test_file_round_trip(self, custom_portfolio, tmp_path):
        path = str(tmp_path / "v2.json")
        save_portfolio(custom_portfolio, path)
        restored = load_portfolio(path)
        assert restored.average_cost() == pytest.approx(
            custom_portfolio.average_cost(), rel=1e-12
        )

    def test_scenario_spec_with_reuse_portfolio_round_trips(self):
        """Full ScenarioSpec round trip including a reuse portfolio."""
        from repro.scenario import (
            ReuseStudy,
            ScenarioSpec,
            run_scenario,
            scenario_from_dict,
            scenario_to_dict,
        )

        spec = ScenarioSpec(
            name="reuse-v2",
            nodes={"7lp": {"base": "7nm", "defect_density": 0.08}},
            technologies={"hv": {"base": "2.5d",
                                 "params": {"chip_attach_yield": 0.97}}},
            studies=(
                ReuseStudy(name="scms", scheme="scms", technology="hv",
                           params={"module_area": 180.0, "node": "7lp",
                                    "counts": [1, 2, 4]}),
                ReuseStudy(name="fsmc", scheme="fsmc", technology="hv",
                           params={"n_chiplets": 2, "k_sockets": 2,
                                    "node": "7lp"}),
            ),
        )
        rebuilt = scenario_from_dict(scenario_to_dict(spec))
        assert rebuilt == spec
        result = run_scenario(rebuilt)
        study = result.result("scms").data["study"]
        assert study.config.node.defect_density == 0.08
        assert study.config.node.name == "7lp"
        assert len(result.result("fsmc").data["study"].multichip.systems) == 5


class TestV1BackCompat:
    V1_DOCUMENT = {
        "version": 1,
        "modules": {
            "m0": {"name": "core", "area": 200.0, "node": "7nm",
                   "scalable_fraction": 1.0}
        },
        "chips": {
            "c0": {"name": "die", "modules": ["m0"], "node": "7nm",
                   "d2d_fraction": 0.1}
        },
        "packages": {
            "p0": {"name": "pkg", "integration": "mcm",
                   "socket_areas": [222.23, 222.23]}
        },
        "systems": [
            {"name": "sys", "chips": ["c0", "c0"], "integration": "mcm",
             "quantity": 500000.0, "package": "p0"}
        ],
    }

    def test_v1_file_loads(self, tmp_path):
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(self.V1_DOCUMENT))
        portfolio = load_portfolio(str(path))
        system = portfolio.systems[0]
        assert system.name == "sys"
        assert system.integration.name == "mcm"
        assert system.package is not None
        assert portfolio.amortized_cost(system).total > 0

    def test_v1_rejects_custom_sections(self):
        document = dict(self.V1_DOCUMENT)
        document["nodes"] = {"x": {"base": "7nm"}}
        with pytest.raises(ConfigError):
            portfolio_from_dict(document)

    def test_v1_rejects_non_catalog_node(self):
        document = json.loads(json.dumps(self.V1_DOCUMENT))
        document["modules"]["m0"]["node"] = "6nm-custom"
        with pytest.raises(ConfigError):
            portfolio_from_dict(document)

    def test_v1_rejects_non_builtin_integration(self):
        document = json.loads(json.dumps(self.V1_DOCUMENT))
        document["systems"][0]["integration"] = "3d"
        with pytest.raises(ConfigError):
            portfolio_from_dict(document)

    def test_default_portfolios_still_emit_v1(self):
        """Catalog-only portfolios keep writing v1 for old readers."""
        node = get_node("7nm")
        chip = Chip.of("c", (Module("m", 100.0, node),), node,
                       d2d=FractionOverhead(0.1))
        system = multichip("s", [chip, chip],
                           technology_registry().create("mcm"))
        document = portfolio_to_dict(Portfolio([system]))
        assert document["version"] == 1
        assert "nodes" not in document
        assert "technologies" not in document


class TestBuildRegistries:
    def test_malformed_section_is_config_error(self):
        with pytest.raises(ConfigError):
            build_registries({"nodes": {"bad": {"base": "nope-nm"}}})
        with pytest.raises(ConfigError):
            build_registries({"technologies": {"bad": {"params": {}}}})
        with pytest.raises(ConfigError):
            build_registries({"nodes": "not-a-mapping"})

    def test_format_version_is_two(self):
        assert FORMAT_VERSION == 2


class TestReviewRegressions:
    def test_default_3d_portfolio_round_trips_as_v2(self):
        """A '3d' integration is not in the v1 set; the writer must emit
        v2 so the document loads back (previously: unloadable v1)."""
        from repro.packaging.stacked3d import stacked_3d

        node = get_node("7nm")
        base = Chip.of("base", (Module("mb", 200.0, node),), node,
                       d2d=FractionOverhead(0.1))
        top = Chip.of("top", (Module("mt", 100.0, node),), node,
                      d2d=FractionOverhead(0.1))
        system = multichip("stack", [base, top], stacked_3d())
        document = portfolio_to_dict(Portfolio([system]))
        assert document["version"] == 2
        restored = portfolio_from_dict(document)
        assert restored.systems[0].integration.name == "3d"

    def test_typoed_technology_parameter_rejected(self):
        from repro.errors import RegistryError

        with pytest.raises(RegistryError):
            technology_registry().create("2.5d", chip_atach_yield=0.95)
        with pytest.raises(ConfigError):
            build_registries(
                {"technologies": {"hv": {"base": "2.5d",
                                          "params": {"chip_atach_yield": 0.95}}}}
            )

    def test_scenario_one_chiplet_partition_matches_cli_semantics(self):
        """technology != 'soc' with n_chiplets=1 prices the 1-chiplet
        package, exactly like `montecarlo --integration mcm --chiplets 1`."""
        from repro.explore.montecarlo import monte_carlo_cost
        from repro.explore.partition import partition_monolith
        from repro.scenario import MonteCarloStudy, ScenarioSpec, run_scenario

        spec = ScenarioSpec(
            name="one-chiplet",
            studies=(MonteCarloStudy(name="mc", module_area=400.0,
                                     node="7nm", technology="mcm",
                                     n_chiplets=1, draws=30),),
        )
        study_result = run_scenario(spec).result("mc").data
        system = partition_monolith(
            400.0, get_node("7nm"), 1,
            technology_registry().create("mcm"), d2d_fraction=0.10,
        )
        direct = monte_carlo_cost(system, draws=30)
        assert study_result.samples == direct.samples
