"""Concurrency contract: batched, interleaved, threaded evaluation is
bit-identical to sequential evaluation, with no cross-talk between
override sets and per-request error isolation."""

import concurrent.futures
import threading

import pytest

from repro.errors import InvalidParameterError, UnknownNodeError
from repro.service.batching import BatcherClosed, CostBatcher
from repro.service.schemas import CostRequest
from repro.service.state import (
    ServiceState,
    evaluate_cost,
    evaluate_cost_batch,
)


def _workload() -> list[CostRequest]:
    """A mix that must not cross-contaminate: three override sets
    (default pricing, poisson, poisson+450mm) interleaved over
    distinct design points."""
    requests = []
    for index in range(10):
        area = 200.0 + 37.0 * index
        requests.append(CostRequest(area=area))
        requests.append(
            CostRequest(area=area, chiplets=3, integration="mcm",
                        yield_model="poisson")
        )
        requests.append(
            CostRequest(area=area, chiplets=4, integration="2.5d",
                        yield_model="poisson", wafer_geometry="450mm")
        )
    return requests


class TestBatchEquivalence:
    def test_batch_bit_identical_to_sequential(self):
        requests = _workload()
        state = ServiceState()
        sequential = [evaluate_cost(request) for request in requests]
        batched = evaluate_cost_batch(requests, state.engine)
        assert batched == sequential

    def test_override_groups_do_not_cross_talk(self):
        """The same area priced under three override sets must give
        three different answers, and each must match its own
        sequential oracle — a grouping bug would leak one group's
        die pricing into another."""
        area = 512.0
        trio = [
            CostRequest(area=area),
            CostRequest(area=area, yield_model="poisson"),
            CostRequest(area=area, yield_model="poisson",
                        wafer_geometry="450mm"),
        ]
        state = ServiceState()
        batched = evaluate_cost_batch(trio, state.engine)
        totals = [result.total for result in batched]
        assert len(set(totals)) == 3
        for request, result in zip(trio, batched):
            assert result == evaluate_cost(request)


class TestThreadedBatcher:
    def test_threaded_stress_bit_identical(self):
        requests = _workload() * 4
        oracle = {
            request: evaluate_cost(request) for request in set(requests)
        }
        state = ServiceState()
        # A sizeable max_wait forces real coalescing under the thread
        # storm below.
        batcher = CostBatcher(state, max_batch=16, max_wait=0.05)
        try:
            barrier = threading.Barrier(8)
            failures: list[str] = []

            def worker(chunk: list[CostRequest]) -> None:
                barrier.wait()
                for request in chunk:
                    result = batcher.evaluate(request, timeout=60.0)
                    if result != oracle[request]:
                        failures.append(
                            f"mismatch for area={request.area}"
                        )

            chunks = [requests[start::8] for start in range(8)]
            threads = [
                threading.Thread(target=worker, args=(chunk,))
                for chunk in chunks
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not failures
            stats = batcher.stats()
            assert stats["batched_requests"] == len(requests)
            # The storm must actually have coalesced: fewer engine
            # batches than requests.
            assert stats["batches"] < len(requests)
            assert stats["largest_batch"] > 1
        finally:
            batcher.close()

    def test_error_isolation(self):
        """One bad design point fails only its own future; tick-mates
        still resolve (via the per-request fallback)."""
        state = ServiceState()
        batcher = CostBatcher(state, max_batch=8, max_wait=0.05)
        try:
            good = CostRequest(area=300.0)
            bad = CostRequest(area=300.0, node="nope-nm")
            futures = [
                batcher.submit(good),
                batcher.submit(bad),
                batcher.submit(CostRequest(area=301.0)),
            ]
            assert futures[0].result(timeout=30) == evaluate_cost(good)
            with pytest.raises(UnknownNodeError):
                futures[1].result(timeout=30)
            assert futures[2].result(timeout=30) == evaluate_cost(
                CostRequest(area=301.0)
            )
        finally:
            batcher.close()

    def test_submit_after_close(self):
        batcher = CostBatcher(ServiceState(), max_wait=0.0)
        batcher.close()
        with pytest.raises(BatcherClosed):
            batcher.submit(CostRequest(area=100.0))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            CostBatcher(ServiceState(), max_batch=0)
        with pytest.raises(InvalidParameterError):
            CostBatcher(ServiceState(), max_wait=-1.0)


class TestResponseCacheIsolation:
    def test_no_cross_talk_between_override_sets(self):
        """Identical areas under different overrides are different
        cache keys — a collision would serve the wrong price."""
        from repro.service.cache import ResponseCache

        cache = ResponseCache(maxsize=8)
        plain = CostRequest(area=700.0)
        priced = CostRequest(area=700.0, yield_model="poisson")
        cache.put("cost", plain.canonical(), "h", {"total": 1.0})
        cache.put("cost", priced.canonical(), "h", {"total": 2.0})
        assert cache.get("cost", plain.canonical(), "h") == {"total": 1.0}
        assert cache.get("cost", priced.canonical(), "h") == {"total": 2.0}

    def test_registry_hash_invalidates(self):
        from repro.service.cache import ResponseCache

        cache = ResponseCache(maxsize=8)
        request = CostRequest(area=700.0)
        cache.put("cost", request.canonical(), "gen-1", {"total": 1.0})
        assert cache.get("cost", request.canonical(), "gen-2") is None
        assert len(cache) == 0

    def test_lru_eviction(self):
        from repro.service.cache import ResponseCache

        cache = ResponseCache(maxsize=2)
        for index in range(3):
            cache.put("cost", f"k{index}", "h", index)
        assert cache.get("cost", "k0", "h") is None
        assert cache.get("cost", "k2", "h") == 2


def test_futures_module_contract():
    """submit() returns a real concurrent.futures.Future."""
    batcher = CostBatcher(ServiceState(), max_wait=0.0)
    try:
        future = batcher.submit(CostRequest(area=123.0))
        assert isinstance(future, concurrent.futures.Future)
        assert future.result(timeout=30).system
    finally:
        batcher.close()
