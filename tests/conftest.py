"""Shared fixtures for the Chiplet Actuary test suite."""

from __future__ import annotations

import pytest

from repro.core.chip import Chip
from repro.core.module import Module
from repro.core.system import System
from repro.d2d.overhead import FractionOverhead
from repro.packaging.info import info
from repro.packaging.interposer import interposer_25d
from repro.packaging.mcm import mcm
from repro.packaging.soc import soc_package
from repro.process.catalog import get_node


@pytest.fixture
def n5():
    return get_node("5nm")


@pytest.fixture
def n7():
    return get_node("7nm")


@pytest.fixture
def n14():
    return get_node("14nm")


@pytest.fixture
def d2d10():
    return FractionOverhead(0.10)


@pytest.fixture
def soc_pkg():
    return soc_package()


@pytest.fixture
def mcm_tech():
    return mcm()


@pytest.fixture
def info_tech():
    return info()


@pytest.fixture
def interposer_tech():
    return interposer_25d()


@pytest.fixture
def simple_module(n7):
    return Module("simple", 200.0, n7)


@pytest.fixture
def simple_chiplet(simple_module, n7, d2d10):
    return Chip.of("simple-chiplet", (simple_module,), n7, d2d=d2d10)


@pytest.fixture
def simple_soc(simple_module, n7, soc_pkg):
    die = Chip.of("simple-die", (simple_module,), n7)
    return System(
        name="simple-soc", chips=(die,), integration=soc_pkg, quantity=1e6
    )


@pytest.fixture
def simple_mcm(simple_chiplet, mcm_tech):
    return System(
        name="simple-mcm",
        chips=(simple_chiplet, simple_chiplet),
        integration=mcm_tech,
        quantity=1e6,
    )
