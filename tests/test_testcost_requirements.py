"""Explicit test-cost model and inverse-requirements solvers."""

import pytest

from repro.core.re_cost import compute_re_cost
from repro.errors import InvalidParameterError
from repro.explore.partition import partition_monolith, soc_reference
from repro.explore.requirements import (
    max_affordable_area,
    max_d2d_fraction,
    required_defect_density,
)
from repro.packaging.interposer import interposer_25d
from repro.packaging.mcm import mcm
from repro.packaging.testcost import TestCostModel, compute_tested_re_cost
from repro.process.catalog import get_node


class TestTestCostModel:
    def test_sort_cost_scales_with_area(self):
        model = TestCostModel()
        assert model.sort_cost(200.0, False) == pytest.approx(
            2 * model.sort_cost(100.0, False)
        )

    def test_kgd_multiplier(self):
        model = TestCostModel(kgd_multiplier=2.0)
        assert model.sort_cost(100.0, True) == pytest.approx(
            2.0 * model.sort_cost(100.0, False)
        )

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            TestCostModel(kgd_multiplier=0.5)
        with pytest.raises(InvalidParameterError):
            TestCostModel(tester_cost_per_hour=-1.0)
        with pytest.raises(InvalidParameterError):
            TestCostModel().sort_cost(0.0, False)


class TestTestedRECost:
    def test_total_is_base_plus_test(self, n7):
        system = partition_monolith(700.0, n7, 2, mcm())
        tested = compute_tested_re_cost(system)
        assert tested.total == pytest.approx(
            tested.base.total + tested.wafer_sort + tested.package_test
        )
        assert tested.base.total == pytest.approx(
            compute_re_cost(system).total
        )

    def test_paper_assumption_test_is_small(self, n7, n5):
        """The paper folds test cost in 'because they are not so
        significant' — verify: under 6% for representative systems."""
        for system in (
            soc_reference(600.0, n5),
            partition_monolith(600.0, n5, 2, mcm()),
            partition_monolith(800.0, n7, 3, interposer_25d()),
        ):
            tested = compute_tested_re_cost(system)
            assert 0.0 < tested.test_share < 0.06

    def test_chiplets_pay_more_sort_per_mm2(self, n7):
        """KGD-grade sort makes the chiplet system's sort bill bigger
        than the monolithic one despite similar silicon area."""
        soc_tested = compute_tested_re_cost(soc_reference(700.0, n7))
        mcm_tested = compute_tested_re_cost(
            partition_monolith(700.0, n7, 2, mcm())
        )
        assert mcm_tested.wafer_sort > soc_tested.wafer_sort

    def test_custom_model(self, n7):
        system = soc_reference(400.0, n7)
        cheap = compute_tested_re_cost(
            system, TestCostModel(tester_cost_per_hour=100.0)
        )
        pricey = compute_tested_re_cost(
            system, TestCostModel(tester_cost_per_hour=1000.0)
        )
        assert pricey.test_total > cheap.test_total


class TestMaxAffordableArea:
    def test_budget_is_respected(self, n5):
        area = max_affordable_area(n5, 200.0)
        assert area is not None
        cost = compute_re_cost(soc_reference(area, n5)).total
        assert cost <= 200.0 * 1.01

    def test_larger_budget_larger_area(self, n5):
        small = max_affordable_area(n5, 100.0)
        large = max_affordable_area(n5, 400.0)
        assert small is not None and large is not None
        assert large > small

    def test_impossible_budget_returns_none(self, n5):
        assert max_affordable_area(n5, 0.01) is None

    def test_invalid_budget(self, n5):
        with pytest.raises(InvalidParameterError):
            max_affordable_area(n5, 0.0)


class TestRequiredDefectDensity:
    def test_achievable_budget(self, n5):
        density = required_defect_density(800.0, n5, 500.0)
        assert density is not None
        evolved = n5.with_defect_density(density)
        cost = compute_re_cost(soc_reference(800.0, evolved)).total
        assert cost <= 500.0 * 1.01

    def test_already_sufficient_returns_catalog(self, n5):
        generous = required_defect_density(800.0, n5, 1e6)
        assert generous == pytest.approx(n5.defect_density)

    def test_unreachable_returns_none(self, n5):
        # Even a perfect process cannot beat the raw wafer share.
        assert required_defect_density(800.0, n5, 1.0) is None


class TestMaxD2DFraction:
    def test_budget_fraction_in_range(self, n5):
        fraction = max_d2d_fraction(800.0, n5, 2, mcm())
        assert fraction is not None
        assert 0.0 < fraction < 0.6

    def test_at_the_limit_costs_match(self, n5):
        fraction = max_d2d_fraction(800.0, n5, 2, mcm())
        soc_cost = compute_re_cost(soc_reference(800.0, n5)).total
        multi = partition_monolith(800.0, n5, 2, mcm(), d2d_fraction=fraction)
        assert compute_re_cost(multi).total <= soc_cost * 1.005

    def test_losing_partition_returns_none(self, n14):
        # Tiny mature-node chip on 2.5D: never wins.
        assert max_d2d_fraction(100.0, n14, 2, interposer_25d()) is None


class TestActiveInterposer:
    def test_active_uses_logic_carrier(self):
        passive = interposer_25d()
        active = interposer_25d(active=True)
        assert passive.interposer_node.name == "si"
        assert active.interposer_node.name == "65nm"
        assert (
            active.interposer_node.wafer_price
            > get_node("65nm").wafer_price
        )

    def test_active_costs_more(self):
        chips = [400.0, 400.0]
        passive = interposer_25d().packaging_cost(chips, 300.0)
        active = interposer_25d(active=True).packaging_cost(chips, 300.0)
        assert active.total > passive.total

    def test_active_nre_premium(self):
        chips = [400.0, 400.0]
        assert interposer_25d(active=True).package_nre(
            chips
        ) > interposer_25d().package_nre(chips)
