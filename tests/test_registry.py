"""Registry layer: lookup, layering, declarative specs."""

import pytest

from repro.errors import RegistryError, UnknownNodeError
from repro.process.catalog import NODES, get_node
from repro.registry import (
    Registry,
    d2d_from_spec,
    d2d_registry,
    node_from_spec,
    node_registry,
    node_to_spec,
    parse_flow,
    technology_from_spec,
    technology_registry,
    technology_to_spec,
)
from repro.packaging.assembly import AssemblyFlow
from repro.packaging.interposer import interposer_25d
from repro.packaging.mcm import mcm


class TestCore:
    def test_register_and_get(self):
        registry = Registry(kind="thing")
        registry.register("a", 1)
        assert registry.get("a") == 1
        assert "a" in registry

    def test_duplicate_rejected_unless_overwrite(self):
        registry = Registry(kind="thing")
        registry.register("a", 1)
        with pytest.raises(RegistryError):
            registry.register("a", 2)
        registry.register("a", 2, overwrite=True)
        assert registry.get("a") == 2

    def test_unknown_name_lists_available(self):
        registry = Registry(kind="thing")
        registry.register("alpha", 1)
        with pytest.raises(RegistryError) as excinfo:
            registry.get("beta")
        assert "alpha" in str(excinfo.value)

    def test_child_layer_shadows_parent(self):
        parent = Registry(kind="thing")
        parent.register("a", 1)
        child = parent.child()
        assert child.get("a") == 1          # falls through
        child.register("a", 2)              # shadowing allowed
        assert child.get("a") == 2
        assert parent.get("a") == 1         # parent untouched
        child.register("b", 3)
        assert "b" not in parent
        assert set(child.names()) == {"a", "b"}

    def test_unregister_local_only(self):
        parent = Registry(kind="thing")
        parent.register("a", 1)
        child = parent.child()
        with pytest.raises(RegistryError):
            child.unregister("a")


class TestNodeRegistry:
    def test_seeded_with_catalog(self):
        registry = node_registry()
        for name in NODES:
            assert registry.get(name) is NODES[name]

    def test_derived_spec(self):
        node = node_from_spec({"base": "7nm", "defect_density": 0.2},
                              name="7nm-risk")
        assert node.name == "7nm-risk"
        assert node.defect_density == 0.2
        assert node.wafer_price == NODES["7nm"].wafer_price

    def test_full_spec_round_trip(self):
        spec = node_to_spec(NODES["5nm"])
        rebuilt = node_from_spec(spec)
        assert rebuilt == NODES["5nm"]

    def test_unknown_field_rejected(self):
        with pytest.raises(RegistryError):
            node_from_spec({"base": "7nm", "defectt_density": 0.2}, name="x")

    def test_missing_required_fields_rejected(self):
        with pytest.raises(RegistryError):
            node_from_spec({"defect_density": 0.1}, name="incomplete")

    def test_get_node_sees_registered_custom_node(self):
        child = node_registry()
        child.register_spec("test-node-xyz", {"base": "7nm", "defect_density": 0.42})
        try:
            assert get_node("test-node-xyz").defect_density == 0.42
        finally:
            child.unregister("test-node-xyz")

    def test_get_node_unknown_still_raises_unknown_node(self):
        with pytest.raises(UnknownNodeError):
            get_node("nope-nm")


class TestTechnologyRegistry:
    def test_builtins_present(self):
        registry = technology_registry()
        assert {"soc", "mcm", "info", "2.5d", "3d"} <= set(registry.names())

    def test_create_returns_fresh_instances(self):
        registry = technology_registry()
        assert registry.create("mcm") is not registry.create("mcm")
        assert registry.create("mcm") == mcm()

    def test_create_with_overrides(self):
        tech = technology_registry().create("2.5d", chip_attach_yield=0.9)
        assert tech.chip_attach_yield == 0.9
        assert tech == interposer_25d(chip_attach_yield=0.9)

    def test_variant_spec_layering(self):
        child = technology_registry().child()
        child.register_spec(
            "hv", {"base": "2.5d", "params": {"chip_attach_yield": 0.9}}
        )
        tech = child.create("hv")
        assert tech.chip_attach_yield == 0.9
        # variant-of-variant composes params
        child.register_spec("hv2", {"base": "hv", "carrier_attach_yield": 0.95})
        tech2 = child.create("hv2")
        assert tech2.chip_attach_yield == 0.9
        assert tech2.carrier_attach_yield == 0.95

    def test_flow_string_parsing(self):
        assert parse_flow("chip-first") is AssemblyFlow.CHIP_FIRST
        assert parse_flow(AssemblyFlow.CHIP_LAST) is AssemblyFlow.CHIP_LAST
        with pytest.raises(RegistryError):
            parse_flow("sideways")
        tech = technology_from_spec({"base": "info", "flow": "chip_first"})
        assert tech.flow is AssemblyFlow.CHIP_FIRST

    def test_to_spec_default_is_empty_params(self):
        for name in ("soc", "mcm", "info", "2.5d", "3d"):
            spec = technology_to_spec(technology_registry().create(name))
            assert spec == {"base": name, "params": {}}

    def test_to_spec_round_trip(self):
        original = interposer_25d(chip_attach_yield=0.9, nre_fixed=2e6)
        spec = technology_to_spec(original)
        rebuilt = technology_from_spec(spec)
        assert rebuilt == original

    def test_active_interposer_not_serializable(self):
        with pytest.raises(RegistryError):
            technology_to_spec(interposer_25d(active=True))


class TestD2DRegistry:
    def test_catalog_profiles(self):
        assert "serdes-xsr" in d2d_registry()

    def test_derived_spec(self):
        profile = d2d_from_spec(
            {"base": "parallel-interposer", "bandwidth_density": 900.0},
            name="ucie",
        )
        assert profile.bandwidth_density == 900.0
        assert profile.carrier == "interposer"
