"""EngineOverrides: the consolidated override value and its back-compat
shims — both spellings bit-identical at every engine entry point."""

import pytest

from repro.config import ConfigRegistries
from repro.engine import EngineOverrides, NO_OVERRIDES, CostEngine
from repro.engine.fastportfolio import PortfolioEngine
from repro.engine.overrides import coalesce
from repro.errors import ConfigError, InvalidParameterError
from repro.explore.partition import partition_monolith, soc_reference
from repro.packaging.mcm import mcm
from repro.process.catalog import get_node
from repro.search.engine import run_search
from repro.search.space import DesignSpace


def _die_cost_fn(yield_model="poisson", wafer_geometry=""):
    return ConfigRegistries().die_cost_fn(
        yield_model, wafer_geometry, context="test"
    )


@pytest.fixture
def system():
    return partition_monolith(500.0, get_node("7nm"), 3, mcm())


class TestValueObject:
    def test_empty_is_falsy(self):
        assert not NO_OVERRIDES
        assert not EngineOverrides()

    def test_any_field_is_truthy(self):
        assert EngineOverrides(yield_model="poisson")
        assert EngineOverrides(precision="fast")
        assert EngineOverrides(die_cost_fn=_die_cost_fn())

    def test_closure_and_names_mutually_exclusive(self):
        with pytest.raises(InvalidParameterError, match="not both"):
            EngineOverrides(die_cost_fn=_die_cost_fn(),
                            yield_model="poisson")

    def test_precision_validated_eagerly(self):
        with pytest.raises(InvalidParameterError):
            EngineOverrides(precision="approximate")

    def test_resolution_is_memoized_per_instance(self):
        overrides = EngineOverrides(yield_model="poisson")
        first = overrides.resolve_die_cost_fn()
        assert overrides.resolve_die_cost_fn() is first

    def test_explicit_registries_bypass_the_memo(self):
        overrides = EngineOverrides(yield_model="poisson")
        registries = ConfigRegistries()
        resolved = overrides.resolve_die_cost_fn(registries=registries)
        assert resolved is not None
        # Global resolution stays independent of the scoped one.
        assert overrides.resolve_die_cost_fn() is not resolved

    def test_unknown_name_raises_config_error(self):
        with pytest.raises(ConfigError, match="nope"):
            EngineOverrides(yield_model="nope").resolve_die_cost_fn()

    def test_empty_resolves_to_none(self):
        assert NO_OVERRIDES.resolve_die_cost_fn() is None
        assert NO_OVERRIDES.resolve_precision() == "exact"
        assert NO_OVERRIDES.resolve_precision("fast32") == "fast32"

    def test_precision_resolution(self):
        assert EngineOverrides(precision="fast").resolve_precision() == "fast"


class TestCoalesce:
    def test_kwargs_build_an_overrides_value(self):
        fn = _die_cost_fn()
        folded = coalesce(None, die_cost_fn=fn, precision="fast")
        assert folded.die_cost_fn is fn
        assert folded.precision == "fast"

    def test_no_kwargs_is_the_shared_empty(self):
        assert coalesce(None) is NO_OVERRIDES

    def test_overrides_pass_through(self):
        overrides = EngineOverrides(yield_model="poisson")
        assert coalesce(overrides) is overrides

    def test_both_spellings_rejected(self):
        overrides = EngineOverrides(yield_model="poisson")
        with pytest.raises(InvalidParameterError, match="not both"):
            coalesce(overrides, die_cost_fn=_die_cost_fn())
        with pytest.raises(InvalidParameterError, match="not both"):
            coalesce(overrides, precision="fast")

    def test_wrong_type_rejected(self):
        with pytest.raises(InvalidParameterError, match="EngineOverrides"):
            coalesce({"yield_model": "poisson"})


class TestEngineEquivalence:
    """kwargs spelling == overrides spelling, bit for bit."""

    def test_evaluate_re(self, system):
        engine = CostEngine()
        legacy = engine.evaluate_re(system, die_cost_fn=_die_cost_fn())
        modern = engine.evaluate_re(
            system, overrides=EngineOverrides(yield_model="poisson")
        )
        assert modern == legacy
        assert modern != CostEngine().evaluate_re(system)

    def test_evaluate_total(self, system):
        engine = CostEngine()
        legacy = engine.evaluate_total(system, die_cost_fn=_die_cost_fn())
        modern = engine.evaluate_total(
            system, overrides=EngineOverrides(yield_model="poisson")
        )
        assert modern == legacy

    def test_monte_carlo(self, system):
        engine = CostEngine()
        legacy = engine.monte_carlo(
            system, draws=50, seed=3, die_cost_fn=_die_cost_fn(),
            precision="fast",
        )
        modern = engine.monte_carlo(
            system, draws=50, seed=3,
            overrides=EngineOverrides(yield_model="poisson",
                                      precision="fast"),
        )
        assert modern == legacy

    def test_evaluate_many(self, system):
        engine = CostEngine()
        systems = [system, soc_reference(400.0, get_node("7nm"))]
        legacy = engine.evaluate_many(systems, die_cost_fn=_die_cost_fn())
        modern = engine.evaluate_many(
            systems, overrides=EngineOverrides(yield_model="poisson")
        )
        assert modern == legacy

    def test_sweep_and_grid(self):
        node = get_node("7nm")
        engine = CostEngine()
        overrides = EngineOverrides(yield_model="poisson")

        def builder(area):
            return soc_reference(area, node)

        legacy = engine.sweep("s", [200.0, 300.0], builder,
                              die_cost_fn=_die_cost_fn())
        modern = engine.sweep("s", [200.0, 300.0], builder,
                              overrides=overrides)
        assert modern == legacy

        def grid_builder(area, count):
            return partition_monolith(area, node, count, mcm())

        legacy = engine.grid("g", [300.0], [2, 3], grid_builder,
                             die_cost_fn=_die_cost_fn())
        modern = engine.grid("g", [300.0], [2, 3], grid_builder,
                             overrides=overrides)
        assert modern == legacy

    def test_ambiguous_spelling_raises(self, system):
        with pytest.raises(InvalidParameterError, match="not both"):
            CostEngine().evaluate_re(
                system,
                die_cost_fn=_die_cost_fn(),
                overrides=EngineOverrides(yield_model="poisson"),
            )


class TestSearchEquivalence:
    SPACE = DesignSpace(
        module_areas=(200.0, 400.0),
        nodes=("7nm",),
        technologies=("mcm",),
        chiplet_counts=(2, 3),
        d2d_fractions=(0.10,),
    )

    def test_run_search(self):
        legacy = run_search(
            self.SPACE, die_cost_fn=_die_cost_fn(), precision="fast"
        )
        modern = run_search(
            self.SPACE,
            overrides=EngineOverrides(yield_model="poisson",
                                      precision="fast"),
        )
        assert modern.frontier == legacy.frontier
        assert modern.top == legacy.top

    def test_names_resolve_through_given_registries(self):
        registries = ConfigRegistries()
        modern = run_search(
            self.SPACE,
            registries=registries,
            overrides=EngineOverrides(yield_model="poisson"),
        )
        legacy = run_search(
            self.SPACE,
            registries=registries,
            die_cost_fn=registries.die_cost_fn("poisson", "",
                                               context="search"),
        )
        assert modern.frontier == legacy.frontier


class TestPortfolioEquivalence:
    def _portfolio(self):
        from repro.reuse import FSMCConfig, build_fsmc

        study = build_fsmc(
            FSMCConfig(n_chiplets=3, k_sockets=3, module_area=150.0),
            mcm(),
        )
        return study.multichip

    def test_volume_solve(self):
        portfolio = self._portfolio()
        overrides = EngineOverrides(yield_model="poisson")
        legacy = PortfolioEngine(CostEngine()).volume_solve(
            portfolio, [1.0, 2.0], die_cost_fn=_die_cost_fn()
        )
        modern = PortfolioEngine(CostEngine()).volume_solve(
            portfolio, [1.0, 2.0], overrides=overrides
        )
        assert modern.point_totals(0) == legacy.point_totals(0)
        assert modern.point_average(1) == legacy.point_average(1)

    def test_evaluate(self):
        portfolio = self._portfolio()
        legacy = PortfolioEngine(CostEngine()).evaluate(
            portfolio, die_cost_fn=_die_cost_fn()
        )
        modern = PortfolioEngine(CostEngine()).evaluate(
            portfolio, overrides=EngineOverrides(yield_model="poisson")
        )
        assert modern == legacy
