"""Corpus generator: template expansion, substitution, unit hashing."""

import json

import pytest

from repro.corpus.generator import (
    corpus_from_dict,
    expand_template,
    load_corpus,
)
from repro.errors import CorpusError

TEMPLATE = {
    "scenario": "grid-{node}-{area}",
    "studies": [
        {
            "kind": "partition_sweep",
            "name": "sweep",
            "module_area": "$area",
            "node": "$node",
            "technology": "mcm",
        }
    ],
}

AXES = {"node": ["7nm", "14nm"], "area": [100, 400]}


def corpus_doc(**overrides):
    payload = {"corpus": "c", "template": TEMPLATE, "axes": AXES}
    payload.update(overrides)
    return payload


class TestExpansion:
    def test_cartesian_count(self):
        documents = expand_template(TEMPLATE, AXES, "c")
        assert len(documents) == 4

    def test_axis_value_substitution_preserves_types(self):
        documents = expand_template(TEMPLATE, AXES, "c")
        areas = {doc["studies"][0]["module_area"] for doc in documents}
        assert areas == {100, 400}
        assert all(
            isinstance(doc["studies"][0]["module_area"], int)
            for doc in documents
        )

    def test_name_placeholder_substitution(self):
        documents = expand_template(TEMPLATE, AXES, "c")
        names = {doc["scenario"] for doc in documents}
        assert "grid-7nm-100" in names
        assert "grid-14nm-400" in names

    def test_template_without_placeholder_gets_point_suffix(self):
        template = dict(TEMPLATE, scenario="fixed")
        documents = expand_template(template, AXES, "c")
        names = sorted(doc["scenario"] for doc in documents)
        assert len(set(names)) == 4
        assert names[0] == "fixed__area-100__node-14nm"

    def test_axes_must_be_non_empty_lists(self):
        with pytest.raises(CorpusError, match="non-empty list"):
            expand_template(TEMPLATE, {"node": []}, "c")


class TestCorpusFromDict:
    def test_units_one_per_scenario_study(self):
        corpus = corpus_from_dict(corpus_doc())
        assert len(corpus.scenarios) == 4
        assert len(corpus.units) == 4
        assert {unit.kind for unit in corpus.units} == {"partition_sweep"}
        assert corpus.units[0].unit_id == "grid-7nm-100/sweep"

    def test_literal_scenarios_supported(self):
        literal = {
            "scenario": "literal",
            "studies": [
                {"kind": "partition_sweep", "name": "s", "module_area": 99,
                 "node": "7nm", "technology": "mcm"}
            ],
        }
        corpus = corpus_from_dict(
            {"corpus": "c", "scenarios": [literal]}
        )
        assert [unit.unit_id for unit in corpus.units] == ["literal/s"]

    def test_template_and_literals_combine(self):
        literal = {
            "scenario": "extra",
            "studies": [
                {"kind": "partition_sweep", "name": "s", "module_area": 99,
                 "node": "7nm", "technology": "mcm"}
            ],
        }
        corpus = corpus_from_dict(corpus_doc(scenarios=[literal]))
        assert len(corpus.units) == 5

    def test_missing_name_rejected(self):
        with pytest.raises(CorpusError, match="missing key 'corpus'"):
            corpus_from_dict({"template": TEMPLATE, "axes": AXES})

    def test_unknown_keys_rejected(self):
        with pytest.raises(CorpusError, match="unknown keys"):
            corpus_from_dict(corpus_doc(sutdies=[]))

    def test_empty_corpus_rejected(self):
        with pytest.raises(CorpusError, match="needs a 'template'"):
            corpus_from_dict({"corpus": "c"})

    def test_invalid_expanded_scenario_is_named(self):
        template = {
            "scenario": "bad-{node}",
            "studies": [{"kind": "nonsense", "name": "s"}],
        }
        with pytest.raises(CorpusError, match="invalid expanded scenario"):
            corpus_from_dict(
                {"corpus": "c", "template": template, "axes": {"node": ["7nm"]}}
            )

    def test_duplicate_scenario_names_rejected(self):
        literal = {
            "scenario": "dup",
            "studies": [
                {"kind": "partition_sweep", "name": "s", "module_area": 99,
                 "node": "7nm", "technology": "mcm"}
            ],
        }
        with pytest.raises(CorpusError, match="duplicate scenario name"):
            corpus_from_dict({"corpus": "c", "scenarios": [literal, literal]})


class TestUnitHashing:
    def test_same_study_same_hash_across_scenario_names(self):
        a = corpus_from_dict(corpus_doc())
        renamed = dict(TEMPLATE, scenario="other-{node}-{area}")
        b = corpus_from_dict(corpus_doc(template=renamed))
        assert [u.spec_hash for u in a.units] == [u.spec_hash for u in b.units]

    def test_different_parameters_different_hash(self):
        corpus = corpus_from_dict(corpus_doc())
        assert len({unit.spec_hash for unit in corpus.units}) == 4

    def test_custom_sections_change_hash(self):
        plain = corpus_from_dict(corpus_doc())
        custom = corpus_from_dict(
            corpus_doc(
                template=dict(
                    TEMPLATE,
                    nodes={"7nm-cheap": {"base": "7nm", "wafer_price": 1.0}},
                )
            )
        )
        assert plain.units[0].spec_hash != custom.units[0].spec_hash


class TestLoadCorpus:
    def test_load_round_trip(self, tmp_path):
        path = tmp_path / "corpus.json"
        path.write_text(json.dumps(corpus_doc()))
        corpus = load_corpus(str(path))
        assert corpus.name == "c"
        assert len(corpus.units) == 4

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CorpusError, match="No such file"):
            load_corpus(str(tmp_path / "absent.json"))

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{")
        with pytest.raises(CorpusError, match="invalid JSON"):
            load_corpus(str(path))

    def test_example_corpus_expands(self):
        corpus = load_corpus("examples/corpus_granularity.json")
        assert corpus.name == "granularity-corpus"
        assert len(corpus.scenarios) == 6
        assert len(corpus.units) == 12
