"""The `search` study kind: spec round-trip, runner wiring (scoped
registries, sink rows, rendered table) and frontier identity against
the `pareto_frontier` oracle on a seeded grid."""

import json

import pytest

from repro.config import ConfigRegistries
from repro.errors import ConfigError
from repro.scenario import (
    ScenarioRunner,
    ScenarioSpec,
    SearchStudy,
    run_scenario,
    scenario_from_dict,
    scenario_to_dict,
    study_from_dict,
    study_to_dict,
)
from repro.search import run_search_oracle


def _study(**overrides) -> SearchStudy:
    base = dict(
        name="ds",
        # Single module area on purpose: with an area axis the smallest
        # area dominates both (re, footprint), collapsing the frontier
        # to one point.  This shape yields a 3-member frontier.
        module_areas=(600.0,),
        nodes=("5nm", "7nm", "14nm"),
        technologies=("mcm", "info", "2.5d"),
        chiplet_counts=(2, 3, 4, 5),
        d2d_fractions=(0.10,),
        quantity=500_000.0,
        objectives=("re", "footprint"),
        top_k=4,
    )
    base.update(overrides)
    return SearchStudy(**base)


def _spec(study: SearchStudy) -> ScenarioSpec:
    return ScenarioSpec(name="search-scenario", studies=(study,))


class TestSpec:
    def test_study_dict_round_trip(self):
        study = _study(test_cost={"tester_cost_per_hour": 400.0},
                       objectives=("re", "test_cost"),
                       yield_model="murphy", wafer_geometry="450mm")
        payload = json.loads(json.dumps(study_to_dict(study)))
        assert payload["kind"] == "search"
        assert study_from_dict(payload) == study

    def test_scenario_round_trip(self):
        spec = _spec(_study())
        assert scenario_from_dict(scenario_to_dict(spec)) == spec

    def test_unknown_keys_rejected(self):
        payload = study_to_dict(_study())
        payload["oops"] = 1
        with pytest.raises(ConfigError):
            study_from_dict(payload)

    def test_invalid_space_names_the_study(self):
        with pytest.raises(ConfigError) as excinfo:
            _study(name="bad-space", objectives=("re", "warp"))
        message = str(excinfo.value)
        assert "search study 'bad-space'" in message
        assert "unknown objective 'warp'" in message

    def test_study_exposes_its_design_space(self):
        space = _study().space()
        assert space.n_candidates == 3 + 3 * 4 * 3
        assert space.objectives == ("re", "footprint")


class TestRunner:
    def test_frontier_matches_pareto_oracle(self):
        study = _study()
        result = run_scenario(_spec(study)).result("ds")
        oracle = run_search_oracle(study.space())
        fast = result.data["result"]
        assert fast.frontier_indices() == oracle.frontier_indices()
        assert fast.frontier == oracle.frontier
        assert fast.top == oracle.top
        # The seeded grid has a real (non-degenerate) frontier.
        assert len(fast.frontier) >= 3
        labels = {candidate.label for candidate in fast.frontier}
        assert any(label.startswith("soc") for label in labels)
        assert any(not label.startswith("soc") for label in labels)

    def test_rendered_table(self):
        result = run_scenario(_spec(_study())).result("ds")
        text = result.text
        assert "Design-space search" in text
        assert "objectives re/footprint" in text
        assert "frontier" in text and "top" in text

    def test_sink_rows_schema(self):
        study = _study()
        result = run_scenario(_spec(study)).result("ds")
        rows = result.rows
        fast = result.data["result"]
        assert len(rows) == len(fast.frontier) + len(fast.top)
        sets = {row["set"] for row in rows}
        assert sets == {"frontier", "top"}
        for row in rows:
            assert {"rank", "index", "scheme", "node", "chiplets",
                    "module_area", "re", "nre", "total", "silicon_area",
                    "footprint"} <= set(row)
        json.dumps(rows)

    def test_scoped_node_resolves(self):
        spec = ScenarioSpec(
            name="scoped",
            nodes={"7hp-scoped": {"base": "7nm", "defect_density": 0.12}},
            studies=(_study(nodes=("7hp-scoped",), chiplet_counts=(2, 3)),),
        )
        result = run_scenario(spec).result("ds")
        fast = result.data["result"]
        assert fast.n_candidates == 1 + 3 * 2
        assert all(c.node == "7hp-scoped" for c in fast.frontier)

    def test_scoped_technology_resolves(self):
        spec = ScenarioSpec(
            name="scoped-tech",
            technologies={"hv": {"base": "2.5d",
                                 "params": {"chip_attach_yield": 0.95}}},
            studies=(_study(technologies=("hv",), chiplet_counts=(2, 3)),),
        )
        fast = run_scenario(spec).result("ds").data["result"]
        schemes = {c.scheme for c in fast.frontier} | {
            c.scheme for c in fast.top
        }
        assert schemes <= {"soc", "hv"}
        assert "hv" in {c.scheme for c in fast.top}

    def test_yield_model_names_reprice_search(self):
        base = run_scenario(_spec(_study())).result("ds")
        priced = run_scenario(
            _spec(_study(yield_model="murphy", wafer_geometry="450mm"))
        ).result("ds")
        assert base.rows != priced.rows
        oracle = run_search_oracle(
            _study(yield_model="murphy", wafer_geometry="450mm").space(),
            die_cost_fn=ConfigRegistries().die_cost_fn(
                "murphy", "450mm", context="test"
            ),
        )
        assert priced.data["result"].frontier == oracle.frontier
