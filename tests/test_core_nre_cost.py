"""NRE cost engine: Eqs. (6)-(8)."""

import pytest

from repro.core.chip import Chip
from repro.core.module import Module
from repro.core.nre_cost import (
    chip_design_nre,
    compute_system_nre,
    d2d_nre,
    module_nre,
    package_nre,
)
from repro.core.system import multichip, soc
from repro.d2d.overhead import FractionOverhead


class TestEq6:
    def test_chip_design_nre_formula(self, simple_chiplet):
        node = simple_chiplet.node
        expected = node.kc_per_mm2 * simple_chiplet.area + node.fixed_chip_nre
        assert chip_design_nre(simple_chiplet) == pytest.approx(expected)

    def test_module_nre_formula(self, simple_chiplet):
        node = simple_chiplet.node
        assert module_nre(simple_chiplet) == pytest.approx(
            node.km_per_mm2 * 200.0
        )

    def test_module_nre_counts_design_once(self, n7):
        module = Module("m", 100.0, n7)
        chip = Chip.of("c", (module, module, module), n7)
        assert module_nre(chip) == pytest.approx(n7.km_per_mm2 * 100.0)

    def test_d2d_area_inflates_chip_term_only(self, simple_module, n7):
        plain = Chip.of("p", (simple_module,), n7)
        chiplet = Chip.of(
            "c", (simple_module,), n7, d2d=FractionOverhead(0.10)
        )
        assert module_nre(plain) == pytest.approx(module_nre(chiplet))
        assert chip_design_nre(chiplet) > chip_design_nre(plain)


class TestSystemNRE:
    def test_soc_has_no_d2d_nre(self, simple_soc):
        nre = compute_system_nre(simple_soc)
        assert nre.d2d == 0.0
        assert nre.modules > 0
        assert nre.chips > 0
        assert nre.packages > 0

    def test_multichip_pays_d2d_once_per_node(
        self, simple_chiplet, mcm_tech, n7
    ):
        system = multichip("m", [simple_chiplet] * 4, mcm_tech)
        assert d2d_nre(system) == pytest.approx(n7.d2d_interface_nre)

    def test_mixed_nodes_pay_d2d_per_node(self, n7, n14, mcm_tech):
        d2d = FractionOverhead(0.10)
        a = Chip.of("a", (Module("ma", 100.0, n7),), n7, d2d=d2d)
        b = Chip.of("b", (Module("mb", 100.0, n14),), n14, d2d=d2d)
        system = multichip("m", [a, b], mcm_tech)
        assert d2d_nre(system) == pytest.approx(
            n7.d2d_interface_nre + n14.d2d_interface_nre
        )

    def test_reused_chip_designed_once(self, simple_chiplet, mcm_tech):
        one = multichip("one", [simple_chiplet], mcm_tech)
        four = multichip("four", [simple_chiplet] * 4, mcm_tech)
        # Same single chip design; only the package differs.
        assert compute_system_nre(four).chips == pytest.approx(
            compute_system_nre(one).chips
        )

    def test_package_nre_uses_design_when_present(
        self, simple_chiplet, mcm_tech
    ):
        from repro.core.package_design import PackageDesign

        design = PackageDesign.for_chips(
            "big", mcm_tech, [simple_chiplet.area] * 4
        )
        system = multichip("r", [simple_chiplet], mcm_tech, package=design)
        assert package_nre(system) == pytest.approx(design.nre)
        plain = multichip("p", [simple_chiplet], mcm_tech)
        assert package_nre(system) > package_nre(plain)

    def test_multichip_nre_exceeds_soc_nre(self, n5, soc_pkg, mcm_tech):
        """Eq. (7) vs Eq. (8) for a single system: partitioning adds mask
        sets, chip designs and D2D NRE — the paper's Section 4.2."""
        from repro.explore.partition import partition_monolith, soc_reference

        soc_nre = compute_system_nre(soc_reference(800.0, n5)).total
        mcm_nre = compute_system_nre(
            partition_monolith(800.0, n5, 2, mcm_tech)
        ).total
        assert mcm_nre > soc_nre

    def test_advanced_node_nre_higher(self, soc_pkg, n5, n14):
        from repro.explore.partition import soc_reference

        advanced = compute_system_nre(soc_reference(800.0, n5)).total
        mature = compute_system_nre(soc_reference(800.0, n14)).total
        assert advanced > mature
