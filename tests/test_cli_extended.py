"""Extended CLI commands: sweep and montecarlo."""

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestSweep:
    def test_table_output(self, capsys):
        code, out, _err = run_cli(
            capsys, "sweep", "--node", "5nm", "--stop", "300"
        )
        assert code == 0
        for label in ("SoC", "MCM", "InFO", "2.5D"):
            assert label in out
        assert "100" in out and "300" in out

    def test_csv_output(self, capsys):
        code, out, _err = run_cli(
            capsys, "sweep", "--node", "7nm", "--stop", "200", "--csv"
        )
        assert code == 0
        header = out.splitlines()[0]
        assert header == "area_mm2,SoC,MCM,InFO,2.5D"
        assert len(out.splitlines()) == 3  # header + 2 areas

    def test_chiplet_count_respected(self, capsys):
        _code, out2, _ = run_cli(
            capsys, "sweep", "--node", "5nm", "--stop", "100",
            "--chiplets", "2", "--csv",
        )
        _code, out4, _ = run_cli(
            capsys, "sweep", "--node", "5nm", "--stop", "100",
            "--chiplets", "4", "--csv",
        )
        # More chiplets -> different MCM numbers.
        assert out2 != out4


class TestMonteCarlo:
    def test_reports_statistics(self, capsys):
        code, out, _err = run_cli(
            capsys,
            "montecarlo",
            "--area", "400",
            "--node", "5nm",
            "--draws", "50",
        )
        assert code == 0
        for label in ("mean", "std", "p05", "p50", "p95"):
            assert label in out

    def test_deterministic_given_seed(self, capsys):
        args = [
            "montecarlo", "--area", "400", "--node", "5nm",
            "--draws", "50", "--seed", "7",
        ]
        _code, first, _ = run_cli(capsys, *args)
        _code, second, _ = run_cli(capsys, *args)
        assert first == second

    def test_multichip_variant(self, capsys):
        code, out, _err = run_cli(
            capsys,
            "montecarlo",
            "--area", "800",
            "--node", "5nm",
            "--integration", "mcm",
            "--draws", "30",
        )
        assert code == 0
        assert "mcm" in out


class TestMonteCarloRegistryOverrides:
    """CLI `montecarlo --method fast` with registry-named die pricing."""

    def test_fast_with_registry_names_succeeds(self, capsys):
        code, out, _err = run_cli(
            capsys,
            "montecarlo", "--area", "400", "--node", "5nm",
            "--draws", "40", "--method", "fast",
            "--yield-model", "poisson", "--wafer-geometry", "300mm",
        )
        assert code == 0
        for label in ("mean", "std", "p05", "p50", "p95"):
            assert label in out

    def test_fast_matches_naive_with_registry_names(self, capsys):
        base = [
            "montecarlo", "--area", "800", "--node", "5nm",
            "--integration", "2.5d", "--chiplets", "4",
            "--draws", "60", "--seed", "7",
            "--yield-model", "murphy", "--wafer-geometry", "300mm",
        ]
        code_fast, fast, _ = run_cli(capsys, *base, "--method", "fast")
        code_naive, naive, _ = run_cli(capsys, *base, "--method", "naive")
        assert code_fast == code_naive == 0
        assert fast == naive

    def test_registry_names_change_the_numbers(self, capsys):
        base = [
            "montecarlo", "--area", "400", "--node", "5nm",
            "--draws", "40", "--seed", "3", "--method", "fast",
        ]
        _code, plain, _ = run_cli(capsys, *base)
        _code, priced, _ = run_cli(capsys, *base, "--yield-model", "poisson")
        assert plain != priced

    def test_unknown_yield_model_lists_available(self, capsys):
        code, _out, err = run_cli(
            capsys,
            "montecarlo", "--area", "400", "--node", "5nm",
            "--draws", "10", "--method", "fast",
            "--yield-model", "nope",
        )
        assert code == 2
        assert "unknown yield model 'nope'" in err
        assert "negative-binomial" in err
        assert "poisson" in err

    def test_unknown_wafer_geometry_lists_available(self, capsys):
        code, _out, err = run_cli(
            capsys,
            "montecarlo", "--area", "400", "--node", "5nm",
            "--draws", "10", "--method", "fast",
            "--wafer-geometry", "nope",
        )
        assert code == 2
        assert "unknown wafer geometry 'nope'" in err
        assert "300mm" in err
