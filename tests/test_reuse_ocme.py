"""OCME scheme structure and heterogeneity economics (Section 5.2)."""

import pytest

from repro.core.re_cost import compute_re_cost
from repro.errors import InvalidParameterError
from repro.packaging.mcm import mcm
from repro.reuse.ocme import OCMEConfig, build_ocme


@pytest.fixture(scope="module")
def study():
    return build_ocme(OCMEConfig(), mcm())


class TestConfig:
    def test_default_labels(self):
        config = OCMEConfig()
        labels = [config.system_label(c) for c in config.systems]
        assert labels == ["C", "C+1X", "C+1X+1Y", "C+2X+2Y"]

    def test_socket_overflow_rejected(self):
        with pytest.raises(InvalidParameterError):
            OCMEConfig(systems=((5, 0),), extension_sockets=4)

    def test_mismatched_widths_rejected(self):
        with pytest.raises(InvalidParameterError):
            OCMEConfig(systems=((1, 0), (1,)))

    def test_negative_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            OCMEConfig(systems=((-1, 0),))


class TestStructure:
    def test_four_variants_four_systems(self, study):
        for portfolio in (
            study.soc,
            study.mcm,
            study.mcm_package_reused,
            study.mcm_heterogeneous,
        ):
            assert len(portfolio) == 4

    def test_center_chip_shared_across_mcm_systems(self, study):
        centers = set()
        for system in study.mcm.systems:
            centers.add(id(system.chips[0]))
        assert len(centers) == 1

    def test_chip_counts_match_configuration(self, study):
        counts = [len(system.chips) for system in study.mcm.systems]
        assert counts == [1, 2, 3, 5]

    def test_heterogeneous_center_on_mature_node(self, study):
        for system in study.mcm_heterogeneous.systems:
            assert system.chips[0].node.name == "14nm"
            for chip in system.chips[1:]:
                assert chip.node.name == "7nm"

    def test_heterogeneous_center_area_unchanged(self, study):
        """The center module is unscalable, so the mature die has the
        same area as the advanced one."""
        advanced = study.mcm.systems[0].chips[0].area
        mature = study.mcm_heterogeneous.systems[0].chips[0].area
        assert mature == pytest.approx(advanced)

    def test_package_reused_variants_share_design(self, study):
        designs = {
            id(system.package) for system in study.mcm_package_reused.systems
        }
        assert designs != {None}
        assert len(designs) == 1


class TestEconomics:
    def test_heterogeneous_center_cheaper_re(self, study):
        """Mature-node center die cuts RE cost (same area, cheaper wafer)."""
        homogeneous = compute_re_cost(
            study.mcm_package_reused.systems[0]
        ).total
        heterogeneous = compute_re_cost(
            study.mcm_heterogeneous.systems[0]
        ).total
        assert heterogeneous < homogeneous

    def test_heterogeneity_saves_total_cost(self, study):
        """The paper: 'the total costs are further reduced by more than
        10%' with heterogeneous integration."""
        for reused_sys, hetero_sys in zip(
            study.mcm_package_reused.systems, study.mcm_heterogeneous.systems
        ):
            reused = study.mcm_package_reused.amortized_cost(reused_sys).total
            hetero = study.mcm_heterogeneous.amortized_cost(hetero_sys).total
            assert hetero < reused

    def test_mcm_beats_soc_for_largest_system(self, study):
        soc_cost = study.soc.amortized_cost(study.soc.systems[-1]).total
        mcm_cost = study.mcm.amortized_cost(study.mcm.systems[-1]).total
        assert mcm_cost < soc_cost

    def test_chip_nre_saving_below_half(self, study):
        """The paper: OCME 'reuse benefit is not as evident (NRE
        cost-saving < 50%) as the SCMS scheme'."""
        soc_nre = sum(
            study.soc.amortized_nre(system).total * system.quantity
            for system in study.soc.systems
        )
        mcm_nre = sum(
            study.mcm.amortized_nre(system).total * system.quantity
            for system in study.mcm.systems
        )
        saving = 1.0 - mcm_nre / soc_nre
        assert 0.0 < saving < 0.5
