"""DieSpec and die-cost arithmetic."""

import pytest

from repro.errors import InvalidParameterError
from repro.process.catalog import get_node
from repro.wafer.die import DieCost, DieSpec, die_cost
from repro.yieldmodel.models import PoissonYield


class TestDieSpec:
    def test_of_resolves_node_by_name(self):
        spec = DieSpec.of(100.0, "7nm")
        assert spec.node.name == "7nm"

    def test_nonpositive_area_rejected(self):
        with pytest.raises(InvalidParameterError):
            DieSpec.of(0.0, "7nm")

    def test_die_yield_matches_eq1(self):
        spec = DieSpec.of(800.0, "7nm")
        assert spec.die_yield == pytest.approx((1 + 0.09 * 8 / 10) ** -10)

    def test_dies_per_wafer(self):
        assert DieSpec.of(800.0, "7nm").dies_per_wafer == 64


class TestDieCost:
    def test_raw_is_wafer_share(self):
        spec = DieSpec.of(800.0, "5nm")
        cost = die_cost(spec)
        assert cost.raw == pytest.approx(16988.0 / 64)

    def test_total_is_raw_over_yield(self):
        spec = DieSpec.of(800.0, "5nm")
        cost = die_cost(spec)
        assert cost.total == pytest.approx(cost.raw / cost.die_yield)

    def test_defect_plus_raw_is_total(self):
        cost = die_cost(DieSpec.of(500.0, "7nm"))
        assert cost.raw + cost.defect == pytest.approx(cost.total)

    def test_defect_grows_with_area(self):
        small = die_cost(DieSpec.of(100.0, "5nm"))
        large = die_cost(DieSpec.of(800.0, "5nm"))
        assert large.defect / large.total > small.defect / small.total

    def test_per_mm2(self):
        cost = die_cost(DieSpec.of(200.0, "7nm"))
        assert cost.per_mm2 == pytest.approx(cost.total / 200.0)

    def test_normalized_per_mm2_above_one(self):
        # A good die always costs more per mm^2 than raw wafer area
        # (yield < 1 and edge loss), so the Fig. 2 metric is > 1.
        for area in (100, 400, 800):
            cost = die_cost(DieSpec.of(area, "5nm"))
            assert cost.normalized_per_mm2 > 1.0

    def test_normalized_grows_with_area(self):
        values = [
            die_cost(DieSpec.of(a, "3nm")).normalized_per_mm2
            for a in (100, 300, 600, 800)
        ]
        assert values == sorted(values)

    def test_custom_yield_model_override(self):
        spec = DieSpec.of(400.0, "7nm")
        default = die_cost(spec)
        poisson = die_cost(spec, yield_model=PoissonYield(0.09))
        # Poisson yield is lower, so cost is higher.
        assert poisson.total > default.total

    def test_impossible_die_rejected(self):
        with pytest.raises(InvalidParameterError):
            die_cost(DieSpec.of(60000.0, "7nm"))

    def test_mature_node_cheaper_than_advanced(self):
        advanced = die_cost(DieSpec.of(400.0, "5nm"))
        mature = die_cost(DieSpec.of(400.0, "14nm"))
        assert mature.total < advanced.total

    def test_diecost_is_dataclass_with_spec(self):
        spec = DieSpec.of(100.0, "7nm")
        cost = die_cost(spec)
        assert isinstance(cost, DieCost)
        assert cost.spec is spec
        assert cost.dies_per_wafer == spec.dies_per_wafer
