"""D2D interface catalog and overhead policies."""

import pytest

from repro.d2d.interface import D2D_CATALOG, D2DInterface, interface_for
from repro.d2d.overhead import (
    NO_OVERHEAD,
    BandwidthOverhead,
    FractionOverhead,
)
from repro.errors import InvalidParameterError


class TestCatalog:
    def test_catalog_has_all_carriers(self):
        carriers = {profile.carrier for profile in D2D_CATALOG.values()}
        assert carriers == {"mcm", "info", "interposer"}

    def test_interface_for_each_carrier(self):
        for carrier in ("mcm", "info", "interposer"):
            assert interface_for(carrier).carrier == carrier

    def test_interface_for_unknown_carrier(self):
        with pytest.raises(InvalidParameterError):
            interface_for("3d")

    def test_denser_carriers_have_denser_phys(self):
        # The paper's Fig. 1 ordering: interposer > fanout > substrate.
        mcm = interface_for("mcm").bandwidth_density
        fanout = interface_for("info").bandwidth_density
        interposer = interface_for("interposer").bandwidth_density
        assert mcm < fanout < interposer

    def test_phy_area_scales_with_bandwidth(self):
        phy = interface_for("mcm")
        assert phy.phy_area(100.0) == pytest.approx(2 * phy.phy_area(50.0))

    def test_phy_area_negative_bandwidth_rejected(self):
        with pytest.raises(InvalidParameterError):
            interface_for("mcm").phy_area(-1.0)

    def test_invalid_profile_rejected(self):
        with pytest.raises(InvalidParameterError):
            D2DInterface("x", "mcm", 0.0, 1.0, 10.0)


class TestFractionOverhead:
    def test_paper_convention(self):
        # 10% of the chip is D2D: chip = module / 0.9.
        overhead = FractionOverhead(0.10)
        module_area = 400.0
        chip = overhead.chip_area(module_area)
        assert chip == pytest.approx(400.0 / 0.9)
        assert overhead.d2d_area(module_area) / chip == pytest.approx(0.10)

    def test_zero_fraction_adds_nothing(self):
        assert FractionOverhead(0.0).d2d_area(500.0) == 0.0
        assert NO_OVERHEAD.chip_area(500.0) == 500.0

    def test_fraction_bounds(self):
        with pytest.raises(InvalidParameterError):
            FractionOverhead(1.0)
        with pytest.raises(InvalidParameterError):
            FractionOverhead(-0.1)

    def test_negative_module_area_rejected(self):
        with pytest.raises(InvalidParameterError):
            FractionOverhead(0.1).d2d_area(-1.0)


class TestBandwidthOverhead:
    def test_area_is_bandwidth_over_density(self):
        phy = interface_for("interposer")
        overhead = BandwidthOverhead(1000.0, phy)
        assert overhead.d2d_area(300.0) == pytest.approx(
            1000.0 / phy.bandwidth_density
        )

    def test_area_independent_of_module_area(self):
        phy = interface_for("mcm")
        overhead = BandwidthOverhead(500.0, phy)
        assert overhead.d2d_area(100.0) == overhead.d2d_area(1000.0)

    def test_equivalent_fraction(self):
        phy = interface_for("mcm")
        overhead = BandwidthOverhead(500.0, phy)
        module_area = 90.0
        d2d = overhead.d2d_area(module_area)
        assert overhead.equivalent_fraction(module_area) == pytest.approx(
            d2d / (module_area + d2d)
        )

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(InvalidParameterError):
            BandwidthOverhead(-1.0, interface_for("mcm"))

    def test_equivalent_fraction_needs_positive_module(self):
        overhead = BandwidthOverhead(100.0, interface_for("mcm"))
        with pytest.raises(InvalidParameterError):
            overhead.equivalent_fraction(0.0)
