"""Defect-density learning curves."""

import pytest

from repro.errors import InvalidParameterError
from repro.process.catalog import get_node
from repro.process.defects import DefectLearningCurve, ramp_curve_for


def test_density_starts_at_initial():
    curve = DefectLearningCurve(0.13, 0.09, 4.0)
    assert curve.density_at(0.0) == pytest.approx(0.13)


def test_density_approaches_floor():
    curve = DefectLearningCurve(0.13, 0.09, 4.0)
    assert curve.density_at(100.0) == pytest.approx(0.09, abs=1e-6)


def test_density_monotone_decreasing():
    curve = DefectLearningCurve(0.13, 0.09, 4.0)
    samples = [curve.density_at(t) for t in range(0, 20)]
    assert samples == sorted(samples, reverse=True)


def test_density_one_time_constant():
    curve = DefectLearningCurve(0.13, 0.09, 4.0)
    import math

    expected = 0.09 + 0.04 * math.exp(-1.0)
    assert curve.density_at(4.0) == pytest.approx(expected)


def test_negative_time_rejected():
    curve = DefectLearningCurve(0.13, 0.09, 4.0)
    with pytest.raises(InvalidParameterError):
        curve.density_at(-1.0)


def test_initial_below_floor_rejected():
    with pytest.raises(InvalidParameterError):
        DefectLearningCurve(0.05, 0.09, 4.0)


def test_nonpositive_time_constant_rejected():
    with pytest.raises(InvalidParameterError):
        DefectLearningCurve(0.13, 0.09, 0.0)


def test_negative_floor_rejected():
    with pytest.raises(InvalidParameterError):
        DefectLearningCurve(0.13, -0.01, 4.0)


def test_node_at_returns_updated_node():
    node = get_node("7nm")
    curve = ramp_curve_for(node, initial_density=0.13)
    ramped = curve.node_at(node, 0.0)
    assert ramped.defect_density == pytest.approx(0.13)
    assert ramped.name == node.name
    mature = curve.node_at(node, 1000.0)
    assert mature.defect_density == pytest.approx(node.defect_density, abs=1e-9)


def test_ramp_curve_floor_is_catalog_density():
    node = get_node("7nm")
    curve = ramp_curve_for(node, initial_density=0.2, time_constant=2.0)
    assert curve.mature_density == node.defect_density
