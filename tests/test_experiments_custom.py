"""Experiments under non-default configurations.

The figure harnesses are parameterized; these tests exercise the knobs
(custom areas, nodes, quantities, socket layouts) to make sure the
harnesses are general tools, not hard-coded figure generators.
"""

import pytest

from repro.experiments.fig2 import run_fig2
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.process.catalog import get_node
from repro.reuse.ocme import OCMEConfig
from repro.reuse.scms import SCMSConfig
from repro.validate.amd import AMDConfig


class TestFig2Custom:
    def test_subset_of_technologies(self):
        result = run_fig2(areas=(100, 200), technologies=("7nm", "28nm"))
        assert len(result.yield_figure.series) == 2
        assert result.yield_figure.xs == (100, 200)

    def test_mature_node_curve(self):
        result = run_fig2(areas=(400,), technologies=("28nm",))
        [series] = result.yield_figure.series
        expected = (1 + 0.07 * 4.0 / 10.0) ** -10 * 100.0
        assert series.ys[0] == pytest.approx(expected)


class TestFig4Custom:
    def test_single_panel(self):
        panels = run_fig4(nodes=("7nm",), chiplet_counts=(4,), areas=(200, 400))
        assert len(panels) == 1
        assert panels[0].n_chiplets == 4
        assert panels[0].areas() == [200, 400]

    def test_custom_d2d_fraction(self):
        lean = run_fig4(
            nodes=("5nm",), chiplet_counts=(2,), areas=(800,),
            d2d_fraction=0.05,
        )[0]
        heavy = run_fig4(
            nodes=("5nm",), chiplet_counts=(2,), areas=(800,),
            d2d_fraction=0.20,
        )[0]
        assert (
            lean.cell(800, "MCM").total < heavy.cell(800, "MCM").total
        )
        # SoC bars unaffected by the D2D knob.
        assert lean.cell(800, "SoC").total == pytest.approx(
            heavy.cell(800, "SoC").total
        )


class TestFig5Custom:
    def test_mature_defect_densities_shrink_saving(self):
        ramp = run_fig5()
        mature = run_fig5(
            AMDConfig(
                compute_node=get_node("7nm"),   # catalog D0 = 0.09
                io_node=get_node("12nm"),       # catalog D0 = 0.082
            )
        )
        assert mature.max_die_cost_saving < ramp.max_die_cost_saving

    def test_custom_core_counts(self):
        result = run_fig5(AMDConfig(core_counts=(16, 64)))
        assert [row.cores for row in result.rows] == [16, 64]


class TestFig6Custom:
    def test_custom_quantities(self):
        result = run_fig6(quantities=(1e6,), nodes=("7nm",))
        assert len(result.entries) == 4
        assert result.entry("7nm", 1e6, "SoC").quantity == 1e6

    def test_more_chiplets_more_nre(self):
        two = run_fig6(nodes=("5nm",), quantities=(5e5,), n_chiplets=2)
        four = run_fig6(nodes=("5nm",), quantities=(5e5,), n_chiplets=4)
        assert (
            four.entry("5nm", 5e5, "MCM").cost.amortized_nre.chips
            > two.entry("5nm", 5e5, "MCM").cost.amortized_nre.chips
        )


class TestFig8Custom:
    def test_two_grades(self):
        result = run_fig8(SCMSConfig(counts=(1, 2), quantity=1e6))
        grades = sorted({entry.grade for entry in result.entries})
        assert grades == [1, 2]

    def test_5nm_variant(self):
        result = run_fig8(SCMSConfig(node=get_node("5nm")))
        assert result.entry(4, "MCM").re.total == pytest.approx(1.0)


class TestFig9Custom:
    def test_custom_center_node(self):
        result = run_fig9(OCMEConfig(center_node=get_node("28nm")))
        # A 28nm center is even cheaper than the default 14nm one.
        default = run_fig9()
        assert (
            result.entry("C", "MCM+pkg+hetero").total
            < default.entry("C", "MCM+pkg+hetero").total
        )

    def test_two_extension_types_three_products(self):
        config = OCMEConfig(systems=((0, 0), (2, 0), (2, 2)))
        result = run_fig9(config)
        assert result.labels() == ["C", "C+2X", "C+2X+2Y"]


class TestFig10Custom:
    def test_single_situation(self):
        result = run_fig10(situations=((2, 3),))
        entry = result.entry(2, 3, "MCM")
        from repro.reuse.fsmc import collocation_count

        assert entry.system_count == collocation_count(3, 2)

    def test_node_knob(self):
        mature = run_fig10(situations=((2, 2),), node_name="14nm")
        advanced = run_fig10(situations=((2, 2),), node_name="5nm")
        # Both normalize to their own SoC reference, so totals are
        # comparable as ratios; just assert both are well-formed.
        assert mature.entry(2, 2, "MCM").total > 0
        assert advanced.entry(2, 2, "MCM").total > 0
