"""Fixture-snippet tests for every contract-linter rule.

Per the ISSUE-8 acceptance criteria, each rule family is proven three
ways: it fires on a violation, it stays silent on the established
idiom, and a ``# repro-lint: ignore[rule-id]`` suppression silences it.
Sources are analyzed in memory with virtual paths, exercising the same
path-shape scoping the CLI uses.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import analyze_sources
from repro.analysis.context import canonical_path, module_name
from repro.errors import AnalysisError


def run(path: str, source: str, *extra: tuple[str, str]):
    report = analyze_sources([(path, textwrap.dedent(source)), *extra])
    return report.findings


def rules_fired(path: str, source: str) -> set[str]:
    return {finding.rule for finding in run(path, source)}


# ---------------------------------------------------------------------------
# context plumbing
# ---------------------------------------------------------------------------

def test_canonical_path_strips_src_prefix():
    assert canonical_path("src/repro/engine/fastmc.py") == "repro/engine/fastmc.py"
    assert canonical_path("tools/check_docs.py") == "tools/check_docs.py"


def test_module_name_resolution():
    assert module_name("src/repro/engine/fastmc.py") == "repro.engine.fastmc"
    assert module_name("src/repro/engine/__init__.py") == "repro.engine"
    assert module_name("src/repro/__init__.py") == "repro"
    assert module_name("tools/check_docs.py") is None


def test_syntax_error_raises_analysis_error():
    with pytest.raises(AnalysisError):
        analyze_sources([("src/repro/core/broken.py", "def f(:\n")])


def test_report_is_sorted_and_counts_files():
    report = analyze_sources(
        [
            ("src/repro/corpus/b.py", "open('x', 'w')\n"),
            ("src/repro/corpus/a.py", "open('x', 'w')\n"),
        ]
    )
    assert [f.path for f in report.findings] == [
        "repro/corpus/a.py", "repro/corpus/b.py"
    ]
    assert len(report.files) == 2


# ---------------------------------------------------------------------------
# layering
# ---------------------------------------------------------------------------

def test_layering_fires_on_upward_import():
    findings = run(
        "src/repro/core/bad.py",
        "from repro.engine.costengine import CostEngine\n",
    )
    assert [f.rule for f in findings] == ["layering"]
    assert "upward import" in findings[0].message


def test_layering_clean_on_downward_and_same_layer_imports():
    assert rules_fired(
        "src/repro/engine/ok.py",
        """\
        from repro.core.system import System
        from repro.engine.packaging_affine import PackagingAffine
        from repro.errors import InvalidParameterError
        """,
    ) == set()


def test_layering_suppressed_on_line():
    assert rules_fired(
        "src/repro/core/bad.py",
        "from repro.engine.costengine import CostEngine"
        "  # repro-lint: ignore[layering]\n",
    ) == set()


def test_layering_ignores_lazy_function_level_imports():
    # The documented escape hatch: catalog.get_node consults the node
    # registry lazily, upward at runtime but not at import time.
    assert rules_fired(
        "src/repro/process/ok.py",
        """\
        def get_thing(name):
            from repro.registry.nodes import node_registry
            return node_registry().get(name)
        """,
    ) == set()


def test_layering_ignores_type_checking_imports():
    assert rules_fired(
        "src/repro/core/ok.py",
        """\
        from typing import TYPE_CHECKING
        if TYPE_CHECKING:
            from repro.scenario.runner import ScenarioResult
        """,
    ) == set()


def test_layering_detects_module_scope_cycle():
    findings = run(
        "src/repro/corpus/a.py",
        "from repro.corpus.b import thing\n",
        ("src/repro/corpus/b.py", "from repro.corpus.a import other\n"),
    )
    assert [f.rule for f in findings] == ["layering"]
    assert "import cycle" in findings[0].message
    assert "repro.corpus.a" in findings[0].message


def test_layering_unmapped_package_needs_a_layer_assignment():
    findings = run("src/repro/newpkg/mod.py", "x = 1\n")
    assert [f.rule for f in findings] == ["layering"]
    assert "no layer assignment" in findings[0].message


def test_layering_leaf_override_is_enforced_both_ways():
    # search.frontier ranks with the model core (docs/ARCHITECTURE.md
    # leaf carve-out): explore may import it sideways...
    assert rules_fired(
        "src/repro/explore/pareto2.py",
        "from repro.search.frontier import dominance_mask\n",
    ) == set()
    # ...and the leaf itself may not grow an upward import.
    findings = run(
        "src/repro/search/frontier.py",
        "from repro.engine.costengine import CostEngine\n",
    )
    assert [f.rule for f in findings] == ["layering"]


# ---------------------------------------------------------------------------
# numpy-guard
# ---------------------------------------------------------------------------

def test_numpy_guard_fires_on_bare_top_level_import():
    findings = run("src/repro/engine/bad.py", "import numpy as np\n")
    assert [f.rule for f in findings] == ["numpy-guard"]


def test_numpy_guard_fires_on_from_import():
    assert rules_fired(
        "src/repro/wafer/bad.py", "from numpy import asarray\n"
    ) == {"numpy-guard"}


def test_numpy_guard_clean_on_guarded_idiom():
    assert rules_fired(
        "src/repro/engine/ok.py",
        """\
        try:  # numpy accelerates the loop; the model never requires it
            import numpy as _np
        except ImportError:
            _np = None
        """,
    ) == set()


def test_numpy_guard_clean_on_function_level_import():
    assert rules_fired(
        "src/repro/engine/ok.py",
        """\
        def fast_path():
            import numpy as np
            return np
        """,
    ) == set()


def test_numpy_guard_out_of_scope_for_tools():
    assert rules_fired("tools/bench_helper.py", "import numpy\n") == set()


def test_numpy_guard_suppressed():
    assert rules_fired(
        "src/repro/engine/bad.py",
        "import numpy as np  # repro-lint: ignore[numpy-guard]\n",
    ) == set()


# ---------------------------------------------------------------------------
# cache-safety
# ---------------------------------------------------------------------------

def test_cache_safety_fires_on_mutable_default():
    findings = run(
        "src/repro/engine/bad.py",
        """\
        import functools

        @functools.lru_cache(maxsize=128)
        def f(a, pool=[]):
            return a
        """,
    )
    assert [f.rule for f in findings] == ["cache-safety"]
    assert "mutable default" in findings[0].message


def test_cache_safety_fires_on_mutable_annotation():
    assert rules_fired(
        "src/repro/core/bad.py",
        """\
        from functools import lru_cache

        @lru_cache
        def f(xs: list) -> float:
            return 0.0
        """,
    ) == {"cache-safety"}


def test_cache_safety_fires_on_mutable_return():
    findings = run(
        "src/repro/core/bad.py",
        """\
        import functools

        @functools.cache
        def f(n):
            return [n, n + 1]
        """,
    )
    assert [f.rule for f in findings] == ["cache-safety"]
    assert "mutable container" in findings[0].message


def test_cache_safety_fires_on_parameter_mutation():
    findings = run(
        "src/repro/core/bad.py",
        """\
        import functools

        @functools.lru_cache(maxsize=None)
        def f(spec):
            spec.update({"hot": True})
            return spec.total
        """,
    )
    assert [f.rule for f in findings] == ["cache-safety"]
    assert "mutates parameter" in findings[0].message


def test_cache_safety_clean_on_value_keyed_idiom():
    # The wafer.diecache idiom: hashable value arguments, frozen result.
    assert rules_fired(
        "src/repro/wafer/ok.py",
        """\
        import functools

        @functools.lru_cache(maxsize=4096)
        def cached_cost(spec, model=None):
            return compute(spec, model)

        @functools.lru_cache(maxsize=4096)
        def scaled(area: float, fraction: float) -> float:
            return area * fraction
        """,
    ) == set()


def test_cache_safety_uncached_functions_unconstrained():
    assert rules_fired(
        "src/repro/core/ok.py",
        """\
        def f(xs: list, pool={}):
            xs.append(1)
            return [1, 2]
        """,
    ) == set()


def test_cache_safety_suppressed():
    assert rules_fired(
        "src/repro/core/bad.py",
        """\
        import functools

        @functools.cache
        def f(n):
            return [n]  # repro-lint: ignore[cache-safety]
        """,
    ) == set()


# ---------------------------------------------------------------------------
# parity-determinism
# ---------------------------------------------------------------------------

def test_determinism_fires_on_sum_over_set():
    findings = run(
        "src/repro/engine/bad.py", "total = sum({1.0, 2.0, 3.0})\n"
    )
    assert [f.rule for f in findings] == ["parity-determinism"]
    assert "unordered" in findings[0].message


def test_determinism_fires_on_sum_over_dict_values():
    assert rules_fired(
        "src/repro/search/bad.py", "total = sum(costs.values())\n"
    ) == {"parity-determinism"}


def test_determinism_fires_on_module_level_random():
    assert rules_fired(
        "src/repro/engine/bad.py",
        "import random\nx = random.gauss(0.0, 1.0)\n",
    ) == {"parity-determinism"}


def test_determinism_fires_on_from_random_import():
    assert rules_fired(
        "src/repro/engine/bad.py", "from random import gauss\n"
    ) == {"parity-determinism"}


def test_determinism_fires_on_wall_clock():
    assert rules_fired(
        "src/repro/engine/bad.py", "import time\nstamp = time.time()\n"
    ) == {"parity-determinism"}


def test_determinism_fires_on_numpy_reduction():
    findings = run("src/repro/search/bad.py", "total = np.sum(column)\n")
    assert [f.rule for f in findings] == ["parity-determinism"]
    assert "reassociate" in findings[0].message


def test_determinism_fires_on_method_reduction():
    assert rules_fired(
        "src/repro/engine/bad.py", "total = column.sum()\n"
    ) == {"parity-determinism"}


def test_determinism_clean_on_blessed_idioms():
    # Seeded Random, sequential folds, ordered iteration: the contract.
    assert rules_fired(
        "src/repro/engine/ok.py",
        """\
        import random

        rng = random.Random(2022)
        prefix = _np.cumsum(column)
        spend = _np.add.accumulate(totals * quantities, axis=1)
        total = sum(values_list)
        ordered = sum(row[name] for name in names)
        """,
    ) == set()


def test_determinism_out_of_scope_outside_engine_search():
    # corpus timing/backoff legitimately reads the clock.
    assert rules_fired(
        "src/repro/corpus/ok.py", "import time\nnow = time.monotonic()\n"
    ) == set()


def test_determinism_suppressed():
    assert rules_fired(
        "src/repro/engine/bad.py",
        "total = weights.sum()  # repro-lint: ignore[parity-determinism]\n",
    ) == set()


def test_determinism_fast_tier_marker_allows_reductions():
    # A module-level PRECISION = "fast" marker opts the module out of
    # the bit-parity contract: reassociating reductions are allowed.
    assert rules_fired(
        "src/repro/engine/kernels.py",
        """\
        PRECISION = "fast"

        total = np.sum(column)
        folded = matrix.sum(axis=-1)
        """,
    ) == set()


def test_determinism_fast_tier_marker_accepts_annotated_assignment():
    assert rules_fired(
        "src/repro/engine/kernels.py",
        'PRECISION: str = "fast"\n\ntotal = np.sum(column)\n',
    ) == set()


def test_determinism_fast_tier_marker_does_not_silence_other_checks():
    # Relaxed parity is not relaxed determinism: unseeded randomness,
    # wall-clock reads and unordered folds still fire.
    assert rules_fired(
        "src/repro/engine/kernels.py",
        """\
        import random
        import time

        PRECISION = "fast"

        x = random.gauss(0.0, 1.0)
        stamp = time.time()
        total = sum(costs.values())
        """,
    ) == {"parity-determinism"}


def test_determinism_other_precision_values_do_not_exempt():
    # Only the "fast" marker opts out; PRECISION = "exact" (or a
    # non-module-level assignment) keeps the bit-parity contract.
    assert rules_fired(
        "src/repro/engine/kernels.py",
        'PRECISION = "exact"\n\ntotal = np.sum(column)\n',
    ) == {"parity-determinism"}
    assert rules_fired(
        "src/repro/engine/kernels.py",
        'def f(column):\n    PRECISION = "fast"\n    return np.sum(column)\n',
    ) == {"parity-determinism"}


# ---------------------------------------------------------------------------
# atomic-write
# ---------------------------------------------------------------------------

def test_atomic_write_fires_on_open_w_in_corpus():
    findings = run(
        "src/repro/corpus/bad.py",
        "with open(path, 'w', encoding='utf-8') as handle:\n"
        "    handle.write(payload)\n",
    )
    assert [f.rule for f in findings] == ["atomic-write"]


def test_atomic_write_fires_on_pathlib_writer_in_sinks():
    assert rules_fired(
        "src/repro/scenario/sinks.py", "target.write_text(body)\n"
    ) == {"atomic-write"}


def test_atomic_write_fires_on_append_and_exclusive_modes():
    assert rules_fired(
        "src/repro/corpus/bad.py",
        "open(p, 'a').write(x)\nopen(q, mode='xb')\n",
    ) == {"atomic-write"}


def test_atomic_write_clean_on_reads_and_ioutil():
    assert rules_fired(
        "src/repro/corpus/ok.py",
        """\
        from repro.ioutil import atomic_write_text

        def save(path, text):
            atomic_write_text(path, text)

        def load(path):
            with open(path, 'r', encoding='utf-8') as handle:
                return handle.read()

        def corrupt_in_place(path):
            with open(path, 'r+b') as handle:
                handle.write(b'x')
        """,
    ) == set()


def test_atomic_write_out_of_scope_elsewhere():
    # config/spec/reporting save helpers are outside the contract scope.
    assert rules_fired(
        "src/repro/reporting/save.py", "open(p, 'w').write(x)\n"
    ) == set()


def test_atomic_write_suppressed():
    assert rules_fired(
        "src/repro/corpus/bad.py",
        "open(p, 'w').write(x)  # repro-lint: ignore[atomic-write]\n",
    ) == set()


# ---------------------------------------------------------------------------
# error-taxonomy
# ---------------------------------------------------------------------------

def test_taxonomy_fires_on_bare_value_error_in_scenario():
    findings = run(
        "src/repro/scenario/bad.py",
        "def f(kind):\n    raise ValueError(f'unknown kind {kind}')\n",
    )
    assert [f.rule for f in findings] == ["error-taxonomy"]
    assert "StudyError" in findings[0].message


def test_taxonomy_fires_on_bare_key_error_in_corpus():
    assert rules_fired(
        "src/repro/corpus/bad.py",
        "def f(unit):\n    raise KeyError(unit)\n",
    ) == {"error-taxonomy"}


def test_taxonomy_clean_on_contextual_errors_and_reraise():
    assert rules_fired(
        "src/repro/scenario/ok.py",
        """\
        from repro.errors import ConfigError, StudyError

        def f(kind):
            raise StudyError('bad kind', scenario='s', study='x', kind=kind)

        def g(payload):
            try:
                return payload['kind']
            except KeyError:
                raise ConfigError('study needs a kind') from None

        def h():
            try:
                risky()
            except Exception:
                raise
        """,
    ) == set()


def test_taxonomy_out_of_scope_in_model_core():
    # The core layer legitimately raises typed builtins via subclasses,
    # and plain ones predate the taxonomy; only scenario/corpus promised
    # contextual errors.
    assert rules_fired(
        "src/repro/reporting/ok.py",
        "def f(name):\n    raise KeyError(name)\n",
    ) == set()


def test_taxonomy_suppressed():
    assert rules_fired(
        "src/repro/corpus/bad.py",
        "def f(unit):\n"
        "    raise KeyError(unit)  # repro-lint: ignore[error-taxonomy]\n",
    ) == set()


# ---------------------------------------------------------------------------
# suppression machinery
# ---------------------------------------------------------------------------

def test_bare_ignore_suppresses_every_rule_on_the_line():
    assert rules_fired(
        "src/repro/corpus/bad.py",
        "open(p, 'w').write(x)  # repro-lint: ignore\n",
    ) == set()


def test_ignore_file_suppresses_named_rule_everywhere():
    assert rules_fired(
        "src/repro/corpus/bad.py",
        """\
        # repro-lint: ignore-file[atomic-write]
        open(p, 'w').write(x)
        open(q, 'w').write(y)
        """,
    ) == set()


def test_ignore_file_leaves_other_rules_active():
    assert rules_fired(
        "src/repro/corpus/bad.py",
        """\
        # repro-lint: ignore-file[atomic-write]
        def f(unit):
            raise KeyError(unit)
        """,
    ) == {"error-taxonomy"}


def test_suppressions_are_counted_not_dropped():
    report = analyze_sources(
        [(
            "src/repro/corpus/bad.py",
            "open(p, 'w').write(x)  # repro-lint: ignore[atomic-write]\n",
        )]
    )
    assert report.findings == ()
    assert report.suppressed == 1
