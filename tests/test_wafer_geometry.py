"""Wafer geometry: dies per wafer, utilization, reticle checks."""

import math

import pytest

from repro.errors import InvalidParameterError, ReticleLimitError
from repro.wafer.geometry import (
    RETICLE_LIMIT_MM2,
    WaferGeometry,
    dies_per_wafer,
    fits_reticle,
    wafer_utilization,
)


class TestDiesPerWafer:
    def test_hand_value_800mm2(self):
        # pi*150^2/800 - pi*300/sqrt(1600) = 88.36 - 23.56 -> 64
        assert dies_per_wafer(800.0) == 64

    def test_hand_value_100mm2(self):
        expected = math.floor(
            math.pi * 150.0**2 / 100.0 - math.pi * 300.0 / math.sqrt(200.0)
        )
        assert dies_per_wafer(100.0) == expected

    def test_monotone_decreasing_in_area(self):
        counts = [dies_per_wafer(a) for a in (50, 100, 200, 400, 800)]
        assert counts == sorted(counts, reverse=True)

    def test_bigger_wafer_more_dies(self):
        assert dies_per_wafer(100.0, diameter=450.0) > dies_per_wafer(
            100.0, diameter=300.0
        )

    def test_zero_for_impossible_die(self):
        assert dies_per_wafer(60000.0) == 0

    def test_edge_exclusion_reduces_count(self):
        assert dies_per_wafer(100.0, edge_exclusion=5.0) < dies_per_wafer(100.0)

    def test_scribe_reduces_count(self):
        assert dies_per_wafer(100.0, scribe_width=0.2) < dies_per_wafer(100.0)

    def test_count_never_negative(self):
        for area in (1.0, 10.0, 858.0, 2000.0, 50000.0):
            assert dies_per_wafer(area) >= 0


class TestUtilization:
    def test_utilization_in_unit_interval(self):
        for area in (25, 100, 400, 800):
            utilization = wafer_utilization(area)
            assert 0.0 < utilization < 1.0

    def test_small_dies_use_wafer_better(self):
        assert wafer_utilization(25.0) > wafer_utilization(800.0)


class TestWaferGeometry:
    def test_effective_die_area_with_scribe(self):
        geometry = WaferGeometry(scribe_width=0.2)
        side = math.sqrt(100.0)
        assert geometry.effective_die_area(100.0) == pytest.approx(
            (side + 0.2) ** 2
        )

    def test_effective_die_area_no_scribe_is_identity(self):
        assert WaferGeometry().effective_die_area(123.0) == 123.0

    def test_usable_diameter(self):
        assert WaferGeometry(300.0, edge_exclusion=3.0).usable_diameter == 294.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            WaferGeometry(diameter=0.0)
        with pytest.raises(InvalidParameterError):
            WaferGeometry(edge_exclusion=-1.0)
        with pytest.raises(InvalidParameterError):
            WaferGeometry(scribe_width=-0.1)
        with pytest.raises(InvalidParameterError):
            WaferGeometry(diameter=100.0, edge_exclusion=50.0)

    def test_nonpositive_area_rejected(self):
        with pytest.raises(InvalidParameterError):
            WaferGeometry().dies_per_wafer(0.0)


class TestReticle:
    def test_limit_constant(self):
        assert RETICLE_LIMIT_MM2 == pytest.approx(26.0 * 33.0)

    def test_fits_reticle(self):
        assert fits_reticle(800.0)
        assert not fits_reticle(900.0)

    def test_check_reticle_returns_verdict(self):
        geometry = WaferGeometry()
        assert geometry.check_reticle(800.0) is True
        assert geometry.check_reticle(900.0) is False

    def test_check_reticle_strict_raises(self):
        with pytest.raises(ReticleLimitError):
            WaferGeometry().check_reticle(900.0, strict=True)
