"""Experiment harnesses: schema and structural checks per figure."""

import pytest

from repro.experiments import (
    run_fig2,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig8,
    run_fig9,
    run_fig10,
)
from repro.experiments.fig2 import FIG2_TECHNOLOGIES
from repro.experiments.printers import (
    render_fig2,
    render_fig4_panel,
    render_fig5,
    render_fig6,
    render_fig8,
    render_fig9,
    render_fig10,
)


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig2(areas=range(100, 900, 100))

    def test_six_technologies(self, result):
        assert len(result.yield_figure.series) == len(FIG2_TECHNOLOGIES)
        assert len(result.cost_figure.series) == len(FIG2_TECHNOLOGIES)

    def test_yields_are_percentages(self, result):
        for series in result.yield_figure.series:
            assert all(0.0 < y <= 100.0 for y in series.ys)

    def test_yield_curves_decreasing(self, result):
        for series in result.yield_figure.series:
            assert list(series.ys) == sorted(series.ys, reverse=True)

    def test_cost_curves_increasing(self, result):
        for series in result.cost_figure.series:
            assert list(series.ys) == sorted(series.ys)

    def test_3nm_worst_yield(self, result):
        """Fig. 2 ordering at 800 mm^2: 3nm yields worst."""
        finals = {
            series.name.split()[0]: series.ys[-1]
            for series in result.yield_figure.series
        }
        assert finals["3nm"] == min(finals.values())

    def test_render(self, result):
        text = render_fig2(result)
        assert "Fig. 2" in text


class TestFig4:
    @pytest.fixture(scope="class")
    def panels(self):
        return run_fig4(areas=(100, 400, 800))

    def test_nine_panels(self, panels):
        assert len(panels) == 9

    def test_every_cell_present(self, panels):
        for panel in panels:
            assert len(panel.cells) == 3 * 4  # areas x schemes

    def test_reference_normalization(self, panels):
        """The 100 mm^2 SoC bar is exactly 1.0 in every panel."""
        for panel in panels:
            assert panel.cell(100, "SoC").total == pytest.approx(1.0)

    def test_soc_identical_across_chiplet_counts(self, panels):
        """SoC bars do not depend on the partition count."""
        by_node = {}
        for panel in panels:
            key = panel.node
            value = panel.cell(800, "SoC").total
            by_node.setdefault(key, set()).add(round(value, 9))
        for values in by_node.values():
            assert len(values) == 1

    def test_render(self, panels):
        text = render_fig4_panel(panels[0])
        assert "Fig. 4" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5()

    def test_reference_row_is_unity(self, result):
        assert result.rows[0].mono_total == pytest.approx(1.0)

    def test_die_saving_headline(self, result):
        """The paper: multi-chip saves 'up to 50% of the die cost'."""
        assert result.max_die_cost_saving >= 0.50

    def test_monotone_mcm_cost(self, result):
        totals = [row.mcm_total for row in result.rows]
        assert totals == sorted(totals)

    def test_render(self, result):
        assert "Fig. 5" in render_fig5(result)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6()

    def test_grid_complete(self, result):
        assert len(result.entries) == 2 * 3 * 4  # nodes x quantities x schemes

    def test_re_independent_of_quantity(self, result):
        for node in ("14nm", "5nm"):
            res = [
                result.entry(node, quantity, "MCM").cost.re_total
                for quantity in (500_000.0, 2_000_000.0, 10_000_000.0)
            ]
            assert res[0] == pytest.approx(res[1]) == pytest.approx(res[2])

    def test_nre_share_falls_with_quantity(self, result):
        for node in ("14nm", "5nm"):
            shares = [
                result.entry(node, quantity, "SoC").re_share
                for quantity in (500_000.0, 2_000_000.0, 10_000_000.0)
            ]
            assert shares == sorted(shares)

    def test_soc_re_is_normalizer(self, result):
        for node in ("14nm", "5nm"):
            entry = result.entry(node, 500_000.0, "SoC")
            assert entry.cost.re_total == pytest.approx(1.0)

    def test_render(self, result):
        assert "Fig. 6" in render_fig6(result)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8()

    def test_variants(self, result):
        assert result.variants() == ["SoC", "MCM", "MCM+pkg", "2.5D", "2.5D+pkg"]

    def test_4x_mcm_re_is_normalizer(self, result):
        assert result.entry(4, "MCM").re.total == pytest.approx(1.0)

    def test_render(self, result):
        assert "Fig. 8" in render_fig8(result)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig9()

    def test_labels(self, result):
        assert result.labels() == ["C", "C+1X", "C+1X+1Y", "C+2X+2Y"]

    def test_largest_mcm_re_is_normalizer(self, result):
        assert result.entry("C+2X+2Y", "MCM").re.total == pytest.approx(1.0)

    def test_render(self, result):
        assert "Fig. 9" in render_fig9(result)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        # Trimmed situations keep the test quick while covering the trend.
        return run_fig10(situations=((2, 2), (3, 4), (4, 4)))

    def test_entries_per_situation(self, result):
        assert len(result.entries) == 3 * 3  # situations x schemes

    def test_system_counts_match_formula(self, result):
        from repro.reuse.fsmc import collocation_count

        for entry in result.entries:
            assert entry.system_count == collocation_count(
                entry.n_chiplets, entry.k_sockets
            )

    def test_multichip_nre_falls_with_reuse(self, result):
        mcm_nre = [
            result.entry(k, n, "MCM").avg_nre
            for (k, n) in result.situations()
        ]
        assert mcm_nre == sorted(mcm_nre, reverse=True)

    def test_render(self, result):
        assert "Fig. 10" in render_fig10(result)
