"""Yield models: Eq. (1) values, limits, and cross-model relations."""

import math

import pytest

from repro.errors import InvalidParameterError
from repro.process.catalog import get_node
from repro.yieldmodel.models import (
    BoseEinsteinYield,
    ExponentialYield,
    GrossYield,
    MurphyYield,
    NegativeBinomialYield,
    PoissonYield,
    SeedsYield,
    yield_model_for_node,
)


class TestNegativeBinomial:
    def test_eq1_hand_value(self):
        # 7nm at 800 mm^2: (1 + 0.09*8/10)^-10
        model = NegativeBinomialYield(0.09, 10.0)
        expected = (1.0 + 0.09 * 8.0 / 10.0) ** -10.0
        assert model.die_yield(800.0) == pytest.approx(expected)

    def test_zero_area_yields_one(self):
        assert NegativeBinomialYield(0.09, 10.0).die_yield(0.0) == 1.0

    def test_zero_defects_yields_one(self):
        assert NegativeBinomialYield(0.0, 10.0).die_yield(800.0) == 1.0

    def test_monotone_decreasing_in_area(self):
        model = NegativeBinomialYield(0.11, 10.0)
        samples = [model.die_yield(a) for a in (50, 100, 200, 400, 800)]
        assert samples == sorted(samples, reverse=True)

    def test_monotone_decreasing_in_density(self):
        yields = [
            NegativeBinomialYield(d, 10.0).die_yield(500.0)
            for d in (0.05, 0.08, 0.11, 0.20)
        ]
        assert yields == sorted(yields, reverse=True)

    def test_seeds_alias(self):
        assert SeedsYield is NegativeBinomialYield

    def test_dice_yield_is_power(self):
        model = NegativeBinomialYield(0.09, 10.0)
        single = model.die_yield(100.0)
        assert model.dice_yield(100.0, 3) == pytest.approx(single**3)

    def test_dice_yield_zero_count_is_one(self):
        assert NegativeBinomialYield(0.09, 10.0).dice_yield(100.0, 0) == 1.0

    def test_dice_yield_negative_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            NegativeBinomialYield(0.09, 10.0).dice_yield(100.0, -1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            NegativeBinomialYield(-0.1, 10.0)
        with pytest.raises(InvalidParameterError):
            NegativeBinomialYield(0.1, 0.0)

    def test_negative_area_rejected(self):
        with pytest.raises(InvalidParameterError):
            NegativeBinomialYield(0.09, 10.0).die_yield(-1.0)


class TestPoisson:
    def test_hand_value(self):
        model = PoissonYield(0.1)
        assert model.die_yield(100.0) == pytest.approx(math.exp(-0.1))

    def test_is_large_c_limit_of_negative_binomial(self):
        poisson = PoissonYield(0.09).die_yield(500.0)
        nb = NegativeBinomialYield(0.09, 1e7).die_yield(500.0)
        assert nb == pytest.approx(poisson, rel=1e-5)

    def test_poisson_is_lower_bound_on_nb(self):
        # Clustering always helps yield, so NB >= Poisson.
        for cluster in (1.0, 3.0, 10.0):
            nb = NegativeBinomialYield(0.11, cluster).die_yield(600.0)
            assert nb >= PoissonYield(0.11).die_yield(600.0)


class TestMurphy:
    def test_zero_defects(self):
        assert MurphyYield(0.0).die_yield(500.0) == 1.0

    def test_hand_value(self):
        defects = 0.1 * 500.0 / 100.0
        expected = ((1 - math.exp(-defects)) / defects) ** 2
        assert MurphyYield(0.1).die_yield(500.0) == pytest.approx(expected)

    def test_between_poisson_and_exponential(self):
        density, area = 0.11, 700.0
        poisson = PoissonYield(density).die_yield(area)
        murphy = MurphyYield(density).die_yield(area)
        exponential = ExponentialYield(density).die_yield(area)
        assert poisson < murphy < exponential


class TestExponential:
    def test_is_c_equals_one_nb(self):
        exponential = ExponentialYield(0.09).die_yield(400.0)
        nb = NegativeBinomialYield(0.09, 1.0).die_yield(400.0)
        assert exponential == pytest.approx(nb)


class TestBoseEinstein:
    def test_one_layer_matches_exponential(self):
        be = BoseEinsteinYield(0.09, critical_layers=1).die_yield(400.0)
        assert be == pytest.approx(ExponentialYield(0.09).die_yield(400.0))

    def test_more_layers_lower_yield(self):
        one = BoseEinsteinYield(0.09, 1).die_yield(400.0)
        five = BoseEinsteinYield(0.09, 5).die_yield(400.0)
        assert five < one

    def test_invalid_layers_rejected(self):
        with pytest.raises(InvalidParameterError):
            BoseEinsteinYield(0.09, 0)


class TestGrossYield:
    def test_scales_base_model(self):
        base = NegativeBinomialYield(0.09, 10.0)
        wrapped = GrossYield(base, gross_factor=0.95)
        assert wrapped.die_yield(500.0) == pytest.approx(
            0.95 * base.die_yield(500.0)
        )

    def test_exposes_defect_density(self):
        base = NegativeBinomialYield(0.09, 10.0)
        assert GrossYield(base, 0.9).defect_density == 0.09

    def test_invalid_factor_rejected(self):
        base = NegativeBinomialYield(0.09, 10.0)
        with pytest.raises(InvalidParameterError):
            GrossYield(base, 0.0)
        with pytest.raises(InvalidParameterError):
            GrossYield(base, 1.1)


class TestNodeFactory:
    def test_factory_uses_node_parameters(self):
        node = get_node("5nm")
        model = yield_model_for_node(node)
        assert model.defect_density == node.defect_density
        assert model.cluster_param == node.cluster_param

    @pytest.mark.parametrize(
        "name,area,expected",
        [
            # Paper Fig. 2 anchor points (computed from Eq. 1).
            ("3nm", 800.0, (1 + 0.20 * 8 / 10) ** -10),
            ("5nm", 800.0, (1 + 0.11 * 8 / 10) ** -10),
            ("14nm", 800.0, (1 + 0.08 * 8 / 10) ** -10),
            ("rdl", 800.0, (1 + 0.05 * 8 / 3) ** -3),
            ("si", 800.0, (1 + 0.06 * 8 / 6) ** -6),
        ],
    )
    def test_fig2_anchor_yields(self, name, area, expected):
        model = yield_model_for_node(get_node(name))
        assert model.die_yield(area) == pytest.approx(expected)
