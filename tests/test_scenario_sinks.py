"""Scenario output sinks and the engine-routed reuse study: structured
rows, normalized rendering, CSV/JSON export, CLI wiring."""

import csv
import json

import pytest

from repro.errors import ConfigError
from repro.scenario import (
    ReuseStudy,
    ScenarioSpec,
    SinkSpec,
    run_scenario,
    save_scenario,
    sink_from_mapping,
    write_sinks,
)


@pytest.fixture
def reuse_spec():
    return ScenarioSpec(
        name="reuse sinks",
        studies=(
            ReuseStudy(name="scms", scheme="scms", technology="mcm",
                       params={"module_area": 150.0, "counts": [1, 2]}),
        ),
    )


@pytest.fixture
def reuse_result(reuse_spec):
    return run_scenario(reuse_spec)


class TestReuseStudyRouting:
    def test_costs_bit_identical_to_oracle(self, reuse_result):
        data = reuse_result.result("scms").data
        study = data["study"]
        for portfolio_costs in data["costs"].values():
            portfolio = portfolio_costs.portfolio
            for system, cost in zip(portfolio.systems, portfolio_costs.costs):
                assert cost.total == portfolio.amortized_cost(system).total
        assert study.config.module_area == 150.0

    def test_normalized_rendering_present(self, reuse_result):
        text = reuse_result.result("scms").text
        assert "amortized total USD/unit" in text
        assert "normalized to the RE of the largest MCM system" in text
        assert "NRE modules" in text

    def test_fsmc_normalizes_to_average_soc_re(self):
        result = run_scenario(
            ScenarioSpec(
                name="fsmc-norm",
                studies=(
                    ReuseStudy(name="fsmc", scheme="fsmc", technology="mcm",
                               params={"n_chiplets": 2, "k_sockets": 2}),
                ),
            )
        )
        assert "normalized to the average SoC RE" in result.result("fsmc").text

    def test_rows_cover_every_variant_and_system(self, reuse_result):
        rows = reuse_result.result("scms").rows
        assert len(rows) == 3 * 2  # SoC / MCM / MCM+pkg x two grades
        assert {row["variant"] for row in rows} == {"SoC", "MCM", "MCM+pkg"}
        for row in rows:
            assert row["total"] == pytest.approx(
                row["re"] + row["nre_modules"] + row["nre_chips"]
                + row["nre_packages"] + row["nre_d2d"]
            )
            assert row["normalized_total"] > 0


class TestStudyRows:
    def test_partition_sweep_rows(self):
        from repro.scenario import PartitionSweepStudy

        result = run_scenario(
            ScenarioSpec(
                name="rows",
                studies=(
                    PartitionSweepStudy(name="sweep", module_area=300.0,
                                        node="7nm", technology="mcm",
                                        chiplet_counts=(1, 2)),
                ),
            )
        )
        rows = result.result("sweep").rows
        assert [row["chiplets"] for row in rows] == [1, 2]
        assert all(row["RE total"] > 0 for row in rows)

    def test_figure_studies_render_text_only(self):
        from repro.scenario import FigureStudy

        result = run_scenario(
            ScenarioSpec(
                name="fig",
                studies=(FigureStudy(figure=2, params={"areas": [100]}),),
            )
        )
        assert result.results[0].rows == ()
        assert result.results[0].text


class TestSinkSpec:
    def test_from_mapping_defaults(self):
        sink = sink_from_mapping({"directory": "out"})
        assert sink.directory == "out"
        assert sink.formats == ("csv", "json")

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError):
            sink_from_mapping({"directory": "out", "compress": True})

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigError):
            SinkSpec(directory="out", formats=("parquet",))

    def test_empty_directory_rejected(self):
        with pytest.raises(ConfigError):
            sink_from_mapping({"formats": ["csv"]})


class TestWriteSinks:
    def test_csv_and_json_written(self, reuse_result, tmp_path):
        sink = SinkSpec(directory=str(tmp_path / "out"))
        written = write_sinks(reuse_result, sink)
        csv_path = tmp_path / "out" / "reuse-sinks__scms.csv"
        json_path = tmp_path / "out" / "reuse-sinks__scms.json"
        assert str(csv_path) in written and str(json_path) in written

        with open(csv_path, newline="") as handle:
            records = list(csv.DictReader(handle))
        assert len(records) == len(reuse_result.result("scms").rows)
        assert float(records[0]["total"]) > 0

        with open(json_path) as handle:
            payload = json.load(handle)
        assert payload["scenario"] == "reuse sinks"
        assert payload["kind"] == "reuse"
        assert payload["rows"]
        assert "normalized to" in payload["text"]

    def test_csv_skipped_without_rows(self, tmp_path):
        from repro.scenario import FigureStudy

        result = run_scenario(
            ScenarioSpec(
                name="fig-only",
                studies=(FigureStudy(figure=2, params={"areas": [100]}),),
            )
        )
        written = write_sinks(result, SinkSpec(directory=str(tmp_path)))
        assert all(path.endswith(".json") for path in written)

    def test_json_only_format(self, reuse_result, tmp_path):
        written = write_sinks(
            reuse_result, SinkSpec(directory=str(tmp_path), formats=("json",))
        )
        assert all(path.endswith(".json") for path in written)


class TestCLIWiring:
    def _write_spec(self, tmp_path, sinks=None):
        spec = ScenarioSpec(
            name="cli-sinks",
            sinks=sinks or {},
            studies=(
                ReuseStudy(name="scms", scheme="scms", technology="mcm",
                           params={"module_area": 150.0, "counts": [1, 2]}),
            ),
        )
        path = str(tmp_path / "scenario.json")
        save_scenario(spec, path)
        return path

    def test_sink_dir_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_spec(tmp_path)
        out_dir = tmp_path / "exports"
        assert main(["run", path, "--sink-dir", str(out_dir)]) == 0
        captured = capsys.readouterr().out
        assert "wrote" in captured
        assert (out_dir / "cli-sinks__scms.csv").stat().st_size > 0
        assert (out_dir / "cli-sinks__scms.json").stat().st_size > 0

    def test_sinks_section_honored(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        path = self._write_spec(
            tmp_path, sinks={"directory": "auto-out", "formats": ["json"]}
        )
        assert main(["run", path]) == 0
        files = list((tmp_path / "auto-out").iterdir())
        assert files and all(f.suffix == ".json" for f in files)

    def test_no_sinks_no_export(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_spec(tmp_path)
        assert main(["run", path]) == 0
        assert "wrote" not in capsys.readouterr().out

    def test_sink_dir_completes_directory_less_section(self, tmp_path, capsys):
        """A sinks section naming only formats is completed (not
        rejected) by --sink-dir."""
        from repro.cli import main

        path = self._write_spec(tmp_path, sinks={"formats": ["json"]})
        out_dir = tmp_path / "completed"
        assert main(["run", path, "--sink-dir", str(out_dir)]) == 0
        files = list(out_dir.iterdir())
        assert files and all(f.suffix == ".json" for f in files)

    def test_sink_format_alone_requires_directory(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_spec(tmp_path)
        assert main(["run", path, "--sink-format", "json"]) == 2
        assert "directory" in capsys.readouterr().err
