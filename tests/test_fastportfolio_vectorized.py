"""Vectorized portfolio solves: bit-parity with the scalar path (and
hence the Portfolio oracle) on the paper studies and on synthetic
many-system portfolios, materialization, the numpy-free fallback, and
die-cost overrides threaded into decompositions."""

import pytest

import repro.engine.fastportfolio as fastportfolio
from repro.config import ConfigRegistries
from repro.core.module import Module
from repro.core.system import chiplet, multichip
from repro.d2d.overhead import FractionOverhead
from repro.engine.costengine import CostEngine
from repro.engine.fastportfolio import PortfolioEngine
from repro.errors import InvalidParameterError
from repro.packaging.mcm import mcm
from repro.process.catalog import get_node
from repro.reuse.fsmc import FSMCConfig, build_fsmc
from repro.reuse.ocme import OCMEConfig, build_ocme
from repro.reuse.portfolio import Portfolio
from repro.reuse.scms import SCMSConfig, build_scms

SCALES = (0.25, 0.5, 1.0, 2.0, 7.3)


@pytest.fixture
def engine():
    return PortfolioEngine(CostEngine())


def synthetic_portfolio(n_systems: int, n_designs: int = 6) -> Portfolio:
    node = get_node("7nm")
    pool = [
        chiplet(
            f"tile-{index}",
            [Module(f"ip-{index}", 40.0 + 15.0 * index, node)],
            node,
            d2d=FractionOverhead(0.1),
        )
        for index in range(n_designs)
    ]
    return Portfolio(
        multichip(
            f"sys-{index:04d}",
            [pool[(index + j) % n_designs] for j in range(2 + index % 3)],
            mcm(),
            quantity=50_000.0 + 1_000.0 * (index % 7),
        )
        for index in range(n_systems)
    )


def _assert_solve_matches_scalar(engine, portfolio, scales=SCALES):
    decomposition = engine.decompose(portfolio)
    solve = decomposition.solve(scales)
    assert solve.scales == tuple(float(scale) for scale in scales)
    for index, scale in enumerate(scales):
        costs = decomposition.evaluate(scale)
        assert solve.point_totals(index) == costs.totals()
        assert solve.point_average(index) == costs.average
        for position, cost in enumerate(costs.costs):
            nre = cost.amortized_nre
            assert float(solve.nre_modules[index][position]) == nre.modules
            assert float(solve.nre_chips[index][position]) == nre.chips
            assert float(solve.nre_packages[index][position]) == nre.packages
            assert float(solve.nre_d2d[index][position]) == nre.d2d
            assert float(solve.quantities[index][position]) == cost.quantity


class TestPaperStudyParity:
    """solve() == evaluate() element-for-element on Figs. 8-10."""

    def test_scms_fig8(self, engine):
        study = build_scms(SCMSConfig(), mcm())
        for portfolio in PortfolioEngine.study_portfolios(study).values():
            _assert_solve_matches_scalar(engine, portfolio)

    def test_ocme_fig9(self, engine):
        study = build_ocme(OCMEConfig(), mcm())
        for portfolio in PortfolioEngine.study_portfolios(study).values():
            _assert_solve_matches_scalar(engine, portfolio)

    def test_fsmc_fig10(self, engine):
        study = build_fsmc(FSMCConfig(n_chiplets=4, k_sockets=3), mcm())
        for portfolio in PortfolioEngine.study_portfolios(study).values():
            _assert_solve_matches_scalar(engine, portfolio)

    def test_volume_sweep_matches_rebuilt_oracle(self, engine):
        """The vector-backed volume_sweep stays bit-identical to an
        oracle rebuilt at the scaled quantities."""
        base = SCMSConfig()
        study = build_scms(base, mcm())
        sweep = engine.volume_sweep("volumes", study.chiplet, SCALES)
        for point in sweep.points:
            rebuilt = build_scms(
                SCMSConfig(quantity=base.quantity * point.x), mcm()
            )
            naive = [
                rebuilt.chiplet.amortized_cost(system)
                for system in rebuilt.chiplet.systems
            ]
            for cost, oracle in zip(point.value.costs, naive):
                assert cost.total == oracle.total
                assert cost.amortized_nre.modules == oracle.amortized_nre.modules
                assert cost.amortized_nre.packages == oracle.amortized_nre.packages
            assert point.value.average == rebuilt.chiplet.average_cost()


class TestManySystemParity:
    def test_synthetic_portfolio(self, engine):
        _assert_solve_matches_scalar(engine, synthetic_portfolio(150))

    def test_materialized_costs_identical(self, engine):
        portfolio = synthetic_portfolio(40)
        decomposition = engine.decompose(portfolio)
        solve = decomposition.solve(SCALES)
        for index, scale in enumerate(SCALES):
            materialized = solve.costs(index)
            scalar = decomposition.evaluate(scale)
            assert materialized.costs == scalar.costs
            assert materialized.average == scalar.average
            assert materialized.volume_scale == scale

    def test_volume_solve_front_end(self, engine):
        portfolio = synthetic_portfolio(25)
        solve = engine.volume_solve(portfolio, (0.5, 2.0))
        assert solve.portfolio is portfolio
        assert solve.point_average(0) > solve.point_average(1)


class TestFallbackAndValidation:
    def test_scalar_fallback_without_numpy(self, engine, monkeypatch):
        portfolio = synthetic_portfolio(30)
        vector = engine.decompose(portfolio).solve(SCALES)
        monkeypatch.setattr(fastportfolio, "_np", None)
        scalar = PortfolioEngine(CostEngine()).volume_solve(portfolio, SCALES)
        for index in range(len(SCALES)):
            assert scalar.point_totals(index) == vector.point_totals(index)
            assert scalar.point_average(index) == vector.point_average(index)

    def test_empty_scales_rejected(self, engine):
        portfolio = synthetic_portfolio(5)
        with pytest.raises(InvalidParameterError):
            engine.volume_solve(portfolio, ())

    def test_non_positive_scale_rejected(self, engine):
        portfolio = synthetic_portfolio(5)
        for bad in (0.0, -1.0):
            with pytest.raises(InvalidParameterError):
                engine.volume_solve(portfolio, (1.0, bad))


class TestDieCostOverride:
    def test_override_reprices_and_caches_separately(self, engine):
        portfolio = synthetic_portfolio(10)
        override = ConfigRegistries().die_cost_fn(yield_model="poisson")
        plain = engine.decompose(portfolio)
        priced = engine.decompose(portfolio, die_cost_fn=override)
        assert priced is not plain
        assert engine.decompose(portfolio, die_cost_fn=override) is priced
        assert engine.decompose(portfolio) is plain
        base = plain.evaluate().totals()
        repriced = priced.evaluate().totals()
        assert base != repriced
        # NRE is design cost: unaffected by the yield model.
        assert plain.evaluate().costs[0].amortized_nre == (
            priced.evaluate().costs[0].amortized_nre
        )

    def test_override_threads_through_volume_solve(self, engine):
        portfolio = synthetic_portfolio(10)
        override = ConfigRegistries().die_cost_fn(
            yield_model="murphy", wafer_geometry="300mm"
        )
        plain = engine.volume_solve(portfolio, (1.0, 2.0))
        priced = engine.volume_solve(portfolio, (1.0, 2.0), die_cost_fn=override)
        assert plain.point_totals(0) != priced.point_totals(0)
