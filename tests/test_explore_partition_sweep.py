"""Partitioning and the generic sweep engine."""

import pytest

from repro.core.re_cost import compute_re_cost
from repro.errors import InvalidParameterError
from repro.explore.partition import partition_monolith, soc_reference
from repro.explore.sweep import Sweep, SweepPoint, run_sweep
from repro.packaging.mcm import mcm
from repro.process.catalog import get_node


class TestPartition:
    def test_module_area_conserved(self, n5, mcm_tech):
        system = partition_monolith(800.0, n5, 3, mcm_tech)
        assert system.module_area == pytest.approx(800.0)

    def test_silicon_grows_by_d2d(self, n5, mcm_tech):
        system = partition_monolith(800.0, n5, 2, mcm_tech, d2d_fraction=0.10)
        assert system.silicon_area == pytest.approx(800.0 / 0.9)

    def test_chiplets_are_distinct_designs(self, n5, mcm_tech):
        """Fig. 4 assumes no reuse: every chiplet is its own design."""
        system = partition_monolith(800.0, n5, 4, mcm_tech)
        assert len(system.unique_chips()) == 4

    def test_one_chiplet_partition(self, n5, mcm_tech):
        system = partition_monolith(800.0, n5, 1, mcm_tech)
        assert len(system.chips) == 1
        assert system.chips[0].is_chiplet  # still pays D2D

    def test_zero_d2d_single_chiplet_matches_soc_die(self, n5, mcm_tech):
        """k=1 with no D2D is the SoC die in an MCM package."""
        system = partition_monolith(800.0, n5, 1, mcm_tech, d2d_fraction=0.0)
        reference = soc_reference(800.0, n5)
        assert system.chips[0].area == pytest.approx(
            reference.chips[0].area
        )
        re_multi = compute_re_cost(system)
        re_soc = compute_re_cost(reference)
        assert re_multi.chips_total == pytest.approx(re_soc.chips_total)

    def test_invalid_arguments(self, n5, mcm_tech):
        with pytest.raises(InvalidParameterError):
            partition_monolith(800.0, n5, 0, mcm_tech)
        with pytest.raises(InvalidParameterError):
            partition_monolith(0.0, n5, 2, mcm_tech)

    def test_finer_partition_better_die_yield_cost(self, n5, mcm_tech):
        """Die-defect cost strictly decreases with granularity."""
        defects = [
            compute_re_cost(
                partition_monolith(800.0, n5, count, mcm_tech)
            ).chip_defects
            for count in (2, 3, 5, 8)
        ]
        assert defects == sorted(defects, reverse=True)


class TestSweep:
    def test_run_sweep_maps_values(self, n5):
        sweep = run_sweep(
            "areas",
            [100.0, 400.0, 800.0],
            lambda area: soc_reference(area, n5),
            lambda system: compute_re_cost(system).total,
        )
        assert sweep.xs() == [100.0, 400.0, 800.0]
        values = sweep.values()
        assert values == sorted(values)

    def test_map_values(self):
        sweep = Sweep(
            "s", (SweepPoint(1, {"a": 2.0}), SweepPoint(2, {"a": 4.0}))
        )
        mapped = sweep.map_values(lambda value: value["a"])
        assert mapped.values() == [2.0, 4.0]

    def test_argmin(self):
        sweep = Sweep("s", (SweepPoint(1, 5.0), SweepPoint(2, 3.0)))
        assert sweep.argmin(lambda v: v).x == 2

    def test_empty_sweep_rejected(self, n5):
        with pytest.raises(InvalidParameterError):
            run_sweep("x", [], lambda v: None, lambda s: 0.0)
        with pytest.raises(InvalidParameterError):
            Sweep("s", ()).argmin(lambda v: v)
