"""Service schema codecs: strict parsing, exact round-trips, canonical
keys, and the shared CLI/HTTP cost table."""

import json

import pytest

from repro.errors import InvalidParameterError
from repro.service.schemas import (
    CostRequest,
    CostResult,
    ScenarioRequest,
    ScenarioRunResult,
    SearchRequest,
    SearchRunResult,
    StudySummary,
    cost_table,
)


class TestCostRequest:
    def test_defaults_mirror_cli(self):
        request = CostRequest.from_dict({"area": 500})
        assert request == CostRequest(
            area=500.0,
            node="7nm",
            integration="soc",
            chiplets=2,
            d2d_fraction=0.10,
            quantity=500_000.0,
            yield_model="",
            wafer_geometry="",
        )

    def test_round_trip_exact(self):
        request = CostRequest(
            area=123.456789,
            node="5nm",
            integration="2.5d",
            chiplets=4,
            d2d_fraction=0.07,
            quantity=2e6,
            yield_model="poisson",
        )
        through_json = json.loads(json.dumps(request.to_dict()))
        assert CostRequest.from_dict(through_json) == request

    def test_missing_area(self):
        with pytest.raises(InvalidParameterError, match="area"):
            CostRequest.from_dict({"node": "7nm"})

    def test_unknown_field(self):
        with pytest.raises(InvalidParameterError, match="unknown field"):
            CostRequest.from_dict({"area": 1, "aera": 2})

    def test_type_errors_are_named(self):
        with pytest.raises(InvalidParameterError, match="chiplets"):
            CostRequest.from_dict({"area": 1, "chiplets": "four"})
        with pytest.raises(InvalidParameterError, match="node"):
            CostRequest.from_dict({"area": 1, "node": 7})
        with pytest.raises(InvalidParameterError, match="area"):
            CostRequest.from_dict({"area": True})

    def test_non_mapping(self):
        with pytest.raises(InvalidParameterError, match="JSON object"):
            CostRequest.from_dict([1, 2])

    def test_canonical_ignores_field_order(self):
        forward = CostRequest.from_dict({"area": 400, "node": "5nm"})
        backward = CostRequest.from_dict({"node": "5nm", "area": 400})
        assert forward.canonical() == backward.canonical()

    def test_canonical_distinguishes_values(self):
        base = CostRequest(area=400.0)
        assert base.canonical() != CostRequest(area=400.5).canonical()
        assert (
            base.canonical()
            != CostRequest(area=400.0, yield_model="poisson").canonical()
        )

    def test_overrides_and_key(self):
        plain = CostRequest(area=100.0)
        assert not plain.overrides()
        assert plain.override_key() == ("", "")
        named = CostRequest(area=100.0, yield_model="poisson",
                            wafer_geometry="panel-510")
        assert named.overrides().yield_model == "poisson"
        assert named.override_key() == ("poisson", "panel-510")


class TestCostResult:
    RESULT = CostResult(
        system="soc-800",
        re={"raw_chips": 1.0, "chip_defects": 0.5, "raw_package": 0.25,
            "package_defects": 0.1, "wasted_kgd": 0.0},
        re_total=1.85,
        nre={"modules": 0.2, "chips": 0.3, "packages": 0.1, "d2d": 0.0},
        nre_total=0.6,
        total=2.45,
    )

    def test_round_trip_exact(self):
        through_json = json.loads(json.dumps(self.RESULT.to_dict()))
        assert CostResult.from_dict(through_json) == self.RESULT

    def test_missing_field(self):
        payload = self.RESULT.to_dict()
        del payload["total"]
        with pytest.raises(InvalidParameterError, match="total"):
            CostResult.from_dict(payload)

    def test_cost_table_shape(self):
        table = cost_table(self.RESULT)
        assert table.title == "Cost of soc-800"
        records = table.records()
        components = [record["component"] for record in records]
        assert components[0] == "RE raw_chips"
        assert "RE total" in components
        assert components[-1] == "total per unit"
        assert records[-1]["USD per unit"] == 2.45

    def test_table_preserves_breakdown_order(self):
        table = cost_table(self.RESULT)
        components = [record["component"] for record in table.records()]
        assert components == (
            [f"RE {name}" for name in self.RESULT.re]
            + ["RE total"]
            + [f"NRE {name} (amortized)" for name in self.RESULT.nre]
            + ["total per unit"]
        )


SCENARIO_DOC = {
    "name": "schema-test",
    "description": "one tiny sweep",
    "studies": [
        {
            "kind": "partition_sweep",
            "name": "sweep",
            "module_area": 200,
            "node": "7nm",
            "chiplet_counts": [1, 2],
            "technology": "mcm",
        }
    ],
}


class TestScenarioRequest:
    def test_parses_document(self):
        request = ScenarioRequest.from_dict({"scenario": SCENARIO_DOC})
        assert request.spec.name == "schema-test"
        assert request.studies == ()

    def test_round_trip(self):
        request = ScenarioRequest.from_dict(
            {"scenario": SCENARIO_DOC, "studies": ["sweep"]}
        )
        again = ScenarioRequest.from_dict(
            json.loads(json.dumps(request.to_dict()))
        )
        assert again.spec == request.spec
        assert again.studies == ("sweep",)
        assert again.canonical() == request.canonical()

    def test_requires_document(self):
        with pytest.raises(InvalidParameterError, match="scenario"):
            ScenarioRequest.from_dict({})

    def test_bad_document_fails_at_the_boundary(self):
        with pytest.raises(Exception):
            ScenarioRequest.from_dict(
                {"scenario": {"name": "x", "studies": [{"kind": "nope"}]}}
            )

    def test_studies_filter(self):
        request = ScenarioRequest.from_dict(
            {"scenario": SCENARIO_DOC, "studies": ["sweep"]}
        )
        assert [s.name for s in request.selected_spec().studies] == ["sweep"]

    def test_unknown_study_rejected(self):
        request = ScenarioRequest.from_dict(
            {"scenario": SCENARIO_DOC, "studies": ["missing"]}
        )
        with pytest.raises(InvalidParameterError, match="missing"):
            request.selected_spec()

    def test_studies_must_be_names(self):
        with pytest.raises(InvalidParameterError, match="studies"):
            ScenarioRequest.from_dict(
                {"scenario": SCENARIO_DOC, "studies": "sweep"}
            )


class TestScenarioRunResult:
    RESULT = ScenarioRunResult(
        scenario="s",
        description="d",
        studies=(
            StudySummary(name="a", kind="partition_sweep", text="table-a",
                         rows=({"chiplets": 1, "RE total": 2.5},)),
            StudySummary(name="b", kind="figure", text="fig"),
        ),
    )

    def test_round_trip(self):
        through_json = json.loads(json.dumps(self.RESULT.to_dict()))
        assert ScenarioRunResult.from_dict(through_json) == self.RESULT

    def test_render_matches_runner_format(self):
        assert self.RESULT.render() == (
            "=== a ===\ntable-a\n\n=== b ===\nfig"
        )


class TestSearchSchemas:
    PAYLOAD = {
        "space": {
            "module_areas": [200, 400],
            "nodes": ["7nm"],
            "technologies": ["mcm"],
            "chiplet_counts": [2],
            "d2d_fractions": [0.1],
        },
        "yield_model": "poisson",
        "precision": "fast",
    }

    def test_round_trip(self):
        request = SearchRequest.from_dict(self.PAYLOAD)
        again = SearchRequest.from_dict(
            json.loads(json.dumps(request.to_dict()))
        )
        assert again.space == request.space
        assert again.canonical() == request.canonical()
        assert again.overrides().precision == "fast"
        assert again.overrides().yield_model == "poisson"

    def test_requires_space(self):
        with pytest.raises(InvalidParameterError, match="space"):
            SearchRequest.from_dict({"yield_model": "poisson"})

    def test_result_round_trip(self):
        result = SearchRunResult(
            n_candidates=12,
            objectives=("total", "footprint"),
            rows=({"set": "frontier", "rank": 0, "total": 1.25},),
        )
        through_json = json.loads(json.dumps(result.to_dict()))
        assert SearchRunResult.from_dict(through_json) == result
