"""Yield-model and wafer-geometry registries: built-ins, declarative
specs, scoped layering, and scenario-study consumption."""

import pytest

from repro.config import build_registries
from repro.errors import ConfigError, RegistryError
from repro.process.catalog import get_node
from repro.registry.geometries import (
    register_wafer_geometry,
    wafer_geometry_from_spec,
    wafer_geometry_registry,
    wafer_geometry_to_spec,
)
from repro.registry.yieldmodels import (
    YieldModelEntry,
    register_yield_model,
    yield_model_from_spec,
    yield_model_registry,
    yield_model_to_spec,
)
from repro.wafer.geometry import WaferGeometry
from repro.yieldmodel.models import (
    GrossYield,
    NegativeBinomialYield,
    PoissonYield,
    yield_model_for_node,
)


class TestYieldModelRegistry:
    def test_builtin_families_registered(self):
        names = yield_model_registry().names()
        for family in ("negative-binomial", "seeds", "poisson", "murphy",
                       "exponential", "bose-einstein"):
            assert family in names

    def test_node_binding_matches_paper_default(self, n7):
        entry = yield_model_registry().get("negative-binomial")
        model = entry.for_node(n7)
        assert isinstance(model, NegativeBinomialYield)
        assert model.die_yield(200.0) == yield_model_for_node(n7).die_yield(200.0)

    def test_spec_with_overrides(self, n7):
        entry = yield_model_from_spec(
            {"model": "negative-binomial", "cluster_param": 4.0}, name="c4"
        )
        model = entry.for_node(n7)
        assert model.cluster_param == 4.0
        assert model.defect_density == n7.defect_density

    def test_gross_factor_wraps(self, n7):
        entry = yield_model_from_spec(
            {"model": "poisson", "gross_factor": 0.9}, name="gross"
        )
        model = entry.for_node(n7)
        assert isinstance(model, GrossYield)
        assert isinstance(model.base, PoissonYield)
        assert model.die_yield(100.0) == pytest.approx(
            0.9 * model.base.die_yield(100.0)
        )

    def test_unknown_family_rejected(self):
        with pytest.raises(RegistryError):
            yield_model_from_spec({"model": "quantum"}, name="bad")

    def test_unknown_param_rejected(self):
        with pytest.raises(RegistryError):
            YieldModelEntry(name="bad", model="poisson",
                            params={"cluster_param": 2.0})

    def test_to_spec_round_trip(self):
        entry = yield_model_from_spec(
            {"model": "bose-einstein", "critical_layers": 3,
             "gross_factor": 0.95, "description": "test"},
            name="be3",
        )
        spec = yield_model_to_spec(entry)
        rebuilt = yield_model_from_spec(spec, name="be3")
        assert rebuilt == entry

    def test_global_registration(self, n7):
        register_yield_model("test-poisson", {"model": "poisson"})
        try:
            entry = yield_model_registry().get("test-poisson")
            assert entry.for_node(n7).die_yield(50.0) > 0
        finally:
            yield_model_registry().unregister("test-poisson")


class TestWaferGeometryRegistry:
    def test_builtin_formats(self):
        registry = wafer_geometry_registry()
        assert registry.get("300mm").diameter == 300.0
        assert registry.get("200mm").diameter == 200.0
        assert registry.get("450mm").diameter == 450.0

    def test_full_spec(self):
        geometry = wafer_geometry_from_spec(
            {"diameter": 300.0, "edge_exclusion": 3.0, "scribe_width": 0.1}
        )
        assert geometry == WaferGeometry(300.0, 3.0, 0.1)

    def test_derived_spec(self):
        geometry = wafer_geometry_from_spec({"base": "300mm",
                                             "edge_exclusion": 2.0})
        assert geometry.diameter == 300.0
        assert geometry.edge_exclusion == 2.0

    def test_unknown_field_rejected(self):
        with pytest.raises(RegistryError):
            wafer_geometry_from_spec({"diameter": 300.0, "notch": True})

    def test_missing_diameter_rejected(self):
        with pytest.raises(RegistryError):
            wafer_geometry_from_spec({"edge_exclusion": 3.0})

    def test_to_spec_round_trip(self):
        geometry = WaferGeometry(200.0, 1.5, 0.08)
        assert wafer_geometry_from_spec(
            wafer_geometry_to_spec(geometry)
        ) == geometry

    def test_global_registration(self):
        register_wafer_geometry("test-fmt", {"diameter": 150.0})
        try:
            assert wafer_geometry_registry().get("test-fmt").diameter == 150.0
        finally:
            wafer_geometry_registry().unregister("test-fmt")


class TestScopedLayering:
    def test_document_sections_stay_scoped(self):
        registries = build_registries(
            {
                "yield_models": {"doc-poisson": {"model": "poisson"}},
                "wafer_geometries": {"doc-fmt": {"base": "300mm",
                                                 "scribe_width": 0.1}},
            }
        )
        assert "doc-poisson" in registries.yield_models
        assert "doc-fmt" in registries.geometries
        assert "doc-poisson" not in yield_model_registry()
        assert "doc-fmt" not in wafer_geometry_registry()

    def test_malformed_section_raises_config_error(self):
        with pytest.raises(ConfigError):
            build_registries({"yield_models": {"bad": {"model": "nope"}}})


class TestScenarioConsumption:
    """Partition studies select yield model / geometry by name."""

    def _spec(self, **study_extra):
        from repro.scenario import PartitionSweepStudy, ScenarioSpec

        return ScenarioSpec(
            name="yield-geom",
            yield_models={"p97": {"model": "poisson", "gross_factor": 0.97}},
            wafer_geometries={"prod": {"base": "300mm", "edge_exclusion": 3.0,
                                       "scribe_width": 0.1}},
            studies=(
                PartitionSweepStudy(
                    name="sweep", module_area=400.0, node="7nm",
                    technology="mcm", chiplet_counts=(2,), **study_extra
                ),
            ),
        )

    def test_overrides_change_pricing(self):
        from repro.scenario import run_scenario

        default = run_scenario(self._spec()).result("sweep").data
        custom = run_scenario(
            self._spec(yield_model="p97", wafer_geometry="prod")
        ).result("sweep").data
        assert custom.points[0].value.total != default.points[0].value.total

    def test_matches_direct_die_costing(self):
        from repro.engine.fastsweep import partition_re_cost
        from repro.scenario import run_scenario
        from repro.wafer.die import DieSpec, die_cost
        from repro.yieldmodel.models import GrossYield, PoissonYield

        custom = run_scenario(
            self._spec(yield_model="p97", wafer_geometry="prod")
        ).result("sweep").data
        node = get_node("7nm")
        geometry = WaferGeometry(300.0, 3.0, 0.1)

        def die_cost_fn(n, area):
            model = GrossYield(
                base=PoissonYield(defect_density=n.defect_density),
                gross_factor=0.97,
            )
            return die_cost(DieSpec(area=area, node=n, geometry=geometry), model)

        from repro.packaging.mcm import mcm

        expected = partition_re_cost(
            400.0, node, 2, mcm(), die_cost_fn=die_cost_fn
        )
        assert custom.points[0].value.total == expected.total

    def test_unknown_name_raises_config_error(self):
        from repro.scenario import run_scenario

        with pytest.raises(ConfigError):
            run_scenario(self._spec(yield_model="missing"))

    def test_scenario_json_round_trip(self):
        from repro.scenario import scenario_from_dict, scenario_to_dict

        spec = self._spec(yield_model="p97", wafer_geometry="prod")
        assert scenario_from_dict(scenario_to_dict(spec)) == spec
