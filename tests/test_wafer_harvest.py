"""Die harvesting / binning extension."""

import pytest

from repro.errors import InvalidParameterError
from repro.wafer.die import DieSpec, die_cost
from repro.wafer.harvest import (
    NO_HARVEST,
    HarvestSpec,
    harvest_saving,
    harvested_die_cost,
)


@pytest.fixture
def big_die():
    return DieSpec.of(500.0, "5nm")


class TestHarvestSpec:
    def test_bounds(self):
        with pytest.raises(InvalidParameterError):
            HarvestSpec(1.5, 0.5)
        with pytest.raises(InvalidParameterError):
            HarvestSpec(0.5, -0.1)

    def test_null_detection(self):
        assert NO_HARVEST.is_null
        assert HarvestSpec(0.0, 1.0).is_null
        assert HarvestSpec(1.0, 0.0).is_null
        assert not HarvestSpec(0.5, 0.5).is_null


class TestHarvestedCost:
    def test_no_harvest_is_baseline(self, big_die):
        assert harvested_die_cost(big_die, NO_HARVEST).total == pytest.approx(
            die_cost(big_die).total
        )

    def test_harvest_reduces_cost(self, big_die):
        harvested = harvested_die_cost(big_die, HarvestSpec(0.5, 0.6))
        assert harvested.total < die_cost(big_die).total

    def test_raw_cost_is_floor(self, big_die):
        """Even total salvage cannot push below the raw wafer share."""
        harvested = harvested_die_cost(big_die, HarvestSpec(1.0, 1.0))
        assert harvested.total >= harvested.raw

    def test_saving_monotone_in_fraction(self, big_die):
        savings = [
            harvest_saving(big_die, HarvestSpec(fraction, 0.5))
            for fraction in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert savings == sorted(savings)

    def test_saving_monotone_in_value(self, big_die):
        savings = [
            harvest_saving(big_die, HarvestSpec(0.5, value))
            for value in (0.0, 0.3, 0.6, 0.9)
        ]
        assert savings == sorted(savings)

    def test_small_die_benefits_less(self):
        """Little yield loss means little to salvage."""
        small = DieSpec.of(50.0, "5nm")
        large = DieSpec.of(700.0, "5nm")
        harvest = HarvestSpec(0.5, 0.6)
        assert harvest_saving(small, harvest) < harvest_saving(large, harvest)

    def test_yield_and_dpw_unchanged(self, big_die):
        base = die_cost(big_die)
        harvested = harvested_die_cost(big_die, HarvestSpec(0.5, 0.5))
        assert harvested.die_yield == base.die_yield
        assert harvested.dies_per_wafer == base.dies_per_wafer
