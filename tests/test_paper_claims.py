"""Every quantitative claim quoted in the paper, asserted with bands.

Each test names the claim, the paper's figure/section, and the tolerance
band we accept given that packaging and NRE parameters are documented
substitutions (see DESIGN.md section 4 and EXPERIMENTS.md).
"""

import pytest

from repro.core.re_cost import compute_re_cost
from repro.experiments import run_fig4, run_fig5, run_fig6, run_fig8, run_fig9
from repro.explore.decide import (
    granularity_marginal_utility,
    multichip_payback_quantity,
)
from repro.explore.partition import partition_monolith, soc_reference
from repro.packaging.interposer import interposer_25d
from repro.packaging.mcm import mcm
from repro.process.catalog import get_node


@pytest.fixture(scope="module")
def fig4_panels():
    return run_fig4()


@pytest.fixture(scope="module")
def fig5():
    return run_fig5()


@pytest.fixture(scope="module")
def fig6():
    return run_fig6()


@pytest.fixture(scope="module")
def fig8():
    return run_fig8()


@pytest.fixture(scope="module")
def fig9():
    return run_fig9()


def panel(panels, node, count):
    return next(
        p for p in panels if p.node == node and p.n_chiplets == count
    )


class TestSection41:
    def test_die_defects_exceed_half_at_5nm_800(self, fig4_panels):
        """§4.1: 'the cost resulting from die defects accounts for more
        than 50% of the total manufacturing cost of the monolithic SoC
        at 800 mm^2' (5 nm)."""
        cell = panel(fig4_panels, "5nm", 2).cell(800, "SoC")
        assert cell.re.chip_defects / cell.total > 0.50

    def test_14nm_yield_saving_up_to_35pct(self, fig4_panels):
        """§4.1: 'up to 35% cost-savings from yield improvement' at
        14 nm.  Band: 20-40% (die-cost saving at the largest area)."""
        cells = panel(fig4_panels, "14nm", 2)
        soc = cells.cell(900, "SoC")
        mcm_cell = cells.cell(900, "MCM")
        saving = 1.0 - mcm_cell.re.chips_total / soc.re.chips_total
        assert 0.20 <= saving <= 0.40

    def test_14nm_mcm_overhead_over_25pct(self, fig4_panels):
        """§4.1: D2D and packaging overhead '>25% for MCM' at 14 nm.
        Overhead = MCM packaging + D2D silicon premium, vs SoC total."""
        cells = panel(fig4_panels, "14nm", 2)
        soc = cells.cell(800, "SoC")
        mcm_cell = cells.cell(800, "MCM")
        d2d_premium = (
            mcm_cell.re.chips_total * (1.0 - 0.9)
        )  # 10% of chip area is D2D
        overhead = (mcm_cell.re.packaging_total + d2d_premium) / soc.total
        assert overhead > 0.25

    def test_14nm_25d_overhead_over_50pct(self, fig4_panels):
        """§4.1: '>50% for 2.5D' overhead at 14 nm."""
        cells = panel(fig4_panels, "14nm", 2)
        soc = cells.cell(800, "SoC")
        interposer_cell = cells.cell(800, "2.5D")
        d2d_premium = interposer_cell.re.chips_total * 0.1
        overhead = (
            interposer_cell.re.packaging_total + d2d_premium
        ) / soc.total
        assert overhead > 0.50

    def test_benefits_increase_with_area(self, fig4_panels):
        """§4.1: 'for any technology node, the benefits increase with
        the increase of area'."""
        for node in ("14nm", "7nm", "5nm"):
            cells = panel(fig4_panels, node, 2)
            gaps = [
                cells.cell(area, "SoC").total - cells.cell(area, "MCM").total
                for area in (300, 500, 700, 900)
            ]
            assert gaps == sorted(gaps)

    def test_turning_point_earlier_for_advanced_nodes(self, fig4_panels):
        """§4.1: 'the turning point for advanced technology comes
        earlier than the mature technology'."""

        def turning_point(node):
            cells = panel(fig4_panels, node, 2)
            for area in cells.areas():
                if cells.cell(area, "MCM").total < cells.cell(area, "SoC").total:
                    return area
            return float("inf")

        assert turning_point("5nm") <= turning_point("7nm") <= turning_point(
            "14nm"
        )

    def test_25d_packaging_comparable_to_chips_at_7nm_900(self, fig4_panels):
        """§4.1: 'the cost of packaging (50% at 7nm, 900 mm^2, 2.5D) is
        comparable with the chip cost'.  Band: 40-60%."""
        cell = panel(fig4_panels, "7nm", 2).cell(900, "2.5D")
        share = cell.re.packaging_total / cell.total
        assert 0.40 <= share <= 0.60

    def test_granularity_marginal_utility(self, fig4_panels):
        """§4.1: 'with the increase of chiplets quantity (3->5), the
        cost-saving of die defects is more negligible (<10% at 5nm,
        800 mm^2, MCM)'.  Band: <= 12%."""
        cells3 = panel(fig4_panels, "5nm", 3).cell(800, "MCM")
        cells5 = panel(fig4_panels, "5nm", 5).cell(800, "MCM")
        saving = (
            cells3.re.chip_defects - cells5.re.chip_defects
        ) / cells3.total
        assert 0.0 < saving <= 0.12

    def test_advanced_packaging_only_for_advanced_process(self, fig4_panels):
        """§4.1 summary: at 14 nm, 2.5D never beats the SoC; at 5 nm it
        does for large areas."""
        mature = panel(fig4_panels, "14nm", 2)
        advanced = panel(fig4_panels, "5nm", 2)
        assert all(
            mature.cell(area, "2.5D").total >= mature.cell(area, "SoC").total
            for area in mature.areas()
        )
        assert (
            advanced.cell(900, "2.5D").total
            < advanced.cell(900, "SoC").total
        )


class TestSection41AMD:
    def test_die_cost_saving_up_to_50pct(self, fig5):
        """§4.1: 'Multi-chip integration can save up to 50% of the die
        cost' (AMD's own claim is >2x for the 64-core part).  Band: the
        maximum saving is at least 50%, and below 72%."""
        assert 0.50 <= fig5.max_die_cost_saving <= 0.72

    def test_mcm_packaging_share_band(self, fig5):
        """Fig. 5 annotations: packaging is 24-30% of the chiplet
        product's cost (decreasing with size).  Band: 20-40% and
        monotone decreasing."""
        shares = [row.mcm_packaging_share for row in fig5.rows]
        assert all(0.20 <= share <= 0.40 for share in shares)
        assert shares == sorted(shares, reverse=True)

    def test_soc_packaging_share_band(self, fig5):
        """Fig. 5 annotations: monolithic packaging is 5-6%.
        Band: 3-14%."""
        for row in fig5.rows:
            assert 0.03 <= row.mono_packaging_share <= 0.14

    def test_packaging_reduces_chiplet_advantage(self, fig5):
        """§4.1: 'when taking packaging overhead into account, the
        advantages of multi-chip are reduced'."""
        for row in fig5.rows:
            die_ratio = row.mcm_die / row.mono_die
            total_ratio = row.mcm_total / row.mono_total
            assert total_ratio > die_ratio


class TestSection42:
    def test_5nm_payback_near_2m(self):
        """§4.2: 'For 5nm systems, when the quantity reaches two
        million, multi-chip architecture starts to pay back'.
        Band: 1M-3M units."""
        node = get_node("5nm")
        quantity = multichip_payback_quantity(
            soc_reference(800.0, node),
            partition_monolith(800.0, node, 2, mcm()),
        )
        assert quantity is not None
        assert 1e6 <= quantity <= 3e6

    def test_nre_dominates_at_500k(self, fig6):
        """Fig. 6: at 500k units the SoC's RE share is ~22%.
        Band: 15-35%."""
        for node in ("14nm", "5nm"):
            entry = fig6.entry(node, 500_000.0, "SoC")
            assert 0.15 <= entry.re_share <= 0.35

    def test_re_share_rises_to_80s_at_10m(self, fig6):
        """Fig. 6: at 10M units the SoC's RE share is ~85%.
        Band: 70-95%."""
        for node in ("14nm", "5nm"):
            entry = fig6.entry(node, 10_000_000.0, "SoC")
            assert 0.70 <= entry.re_share <= 0.95

    def test_multichip_chip_nre_heavy_at_500k(self, fig6):
        """§4.2: 'multi-chip leads to very high NRE costs (36% at 500k
        quantity) for designing and manufacturing chips'.
        Band: chip-NRE share of the MCM total is 25-50%."""
        entry = fig6.entry("5nm", 500_000.0, "MCM")
        share = entry.cost.amortized_nre.chips / entry.total
        assert 0.25 <= share <= 0.50

    def test_d2d_and_package_nre_small(self, fig6):
        """§4.2: 'the NRE overhead of D2D interface and packaging is no
        more than 2% and 9% (2.5D)'."""
        for node in ("14nm", "5nm"):
            for quantity in (500_000.0, 2_000_000.0, 10_000_000.0):
                entry = fig6.entry(node, quantity, "2.5D")
                assert entry.cost.amortized_nre.d2d / entry.total <= 0.02
                assert entry.cost.amortized_nre.packages / entry.total <= 0.09

    def test_soc_wins_at_500k(self, fig6):
        """§4.2: 'monolithic SoC is often a better choice for a single
        system unless the area or the production quantity is large'."""
        for node in ("14nm", "5nm"):
            soc_total = fig6.entry(node, 500_000.0, "SoC").total
            for scheme in ("MCM", "InFO", "2.5D"):
                assert fig6.entry(node, 500_000.0, scheme).total > soc_total

    def test_mcm_wins_at_10m_only_at_5nm(self, fig6):
        """At 10M units the 5 nm MCM beats the SoC; the 14 nm one still
        does not (its RE saving is eaten by packaging + D2D)."""
        assert (
            fig6.entry("5nm", 10_000_000.0, "MCM").total
            < fig6.entry("5nm", 10_000_000.0, "SoC").total
        )
        assert (
            fig6.entry("14nm", 10_000_000.0, "MCM").total
            > fig6.entry("14nm", 10_000_000.0, "SoC").total
        )


class TestSection51:
    def test_chip_nre_saving_three_quarters(self, fig8):
        """§5.1: 'there is vast chip NRE cost-saving (nearly three
        quarters for 4X system) compared with monolithic SoC'.
        Band: 65-85%."""
        soc = fig8.entry(4, "SoC").nre.chips
        mcm_share = fig8.entry(4, "MCM").nre.chips
        saving = 1.0 - mcm_share / soc
        assert 0.65 <= saving <= 0.85

    def test_package_reuse_cuts_4x_package_nre_by_two_thirds(self, fig8):
        """§5.1: 'for the largest 4X system, the NRE cost of the package
        will be reduced by two-thirds' (exactly: one design split over
        three grades)."""
        plain = fig8.entry(4, "MCM").nre.packages
        reused = fig8.entry(4, "MCM+pkg").nre.packages
        assert 1.0 - reused / plain == pytest.approx(2.0 / 3.0, abs=0.02)

    def test_package_reuse_raises_1x_total(self, fig8):
        """§5.1: 'for the smallest 1X system, the total cost will
        increase more than 20%'.  Band: >= 8% (our substrate cost
        substitution is conservative; see EXPERIMENTS.md)."""
        plain = fig8.entry(1, "MCM").total
        reused = fig8.entry(1, "MCM+pkg").total
        assert (reused - plain) / plain >= 0.08

    def test_25d_reused_interposer_packaging_over_half(self, fig8):
        """§5.1: 'if the 4x interposer is reused in the 1x system,
        packaging cost more than 50%'.  Band: packaging >= 40% of the
        1X 2.5D system's RE+NRE total; and >= 60% of its RE alone."""
        entry = fig8.entry(1, "2.5D+pkg")
        assert entry.re.packaging_total / entry.total >= 0.40
        assert entry.re.packaging_total / entry.re.total >= 0.60

    def test_25d_still_benefits_from_chiplet_reuse(self, fig8):
        """§5.1: '2.5D can still benefit from chiplet reuse' — its chip
        NRE share equals the MCM one (same chiplet design)."""
        assert fig8.entry(4, "2.5D").nre.chips == pytest.approx(
            fig8.entry(4, "MCM").nre.chips
        )


class TestSection52:
    def test_ocme_nre_saving_below_half(self, fig9):
        """§5.2: 'the reuse benefit is not as evident (NRE cost-saving
        < 50%) as the SCMS scheme'."""
        soc_nre = sum(
            fig9.entry(label, "SoC").nre.total for label in fig9.labels()
        )
        mcm_nre = sum(
            fig9.entry(label, "MCM").nre.total for label in fig9.labels()
        )
        saving = 1.0 - mcm_nre / soc_nre
        assert 0.0 < saving < 0.50

    def test_heterogeneity_saves_over_10pct(self, fig9):
        """§5.2: 'with heterogeneous integration the total costs are
        further reduced by more than 10%'."""
        for label in fig9.labels():
            reused = fig9.entry(label, "MCM+pkg").total
            hetero = fig9.entry(label, "MCM+pkg+hetero").total
            assert (reused - hetero) / reused > 0.10

    def test_single_c_system_half_saving(self, fig9):
        """§5.2: 'especially for the single C system, there is almost
        half the cost-saving'.  Band: 35-55%."""
        reused = fig9.entry("C", "MCM+pkg").total
        hetero = fig9.entry("C", "MCM+pkg+hetero").total
        assert 0.35 <= (reused - hetero) / reused <= 0.55


class TestSection53:
    def test_fsmc_formula_example(self):
        """§5.3: the paper's own formula gives 209 systems for six
        chiplets in a 4-socket package (its prose says 'up to 119',
        which does not match the formula; we follow the formula —
        see DESIGN.md)."""
        from repro.reuse.fsmc import collocation_count

        assert collocation_count(6, 4) == 209

    def test_more_reuse_more_benefit(self):
        """§5.3: 'the more chiplets are reused, the more benefits from
        NRE cost amortization' — monotone across the five situations."""
        from repro.experiments import run_fig10

        result = run_fig10(situations=((2, 2), (2, 4), (3, 4), (4, 4)))
        nre = [
            result.entry(k, n, "MCM").avg_nre
            for (k, n) in result.situations()
        ]
        assert nre == sorted(nre, reverse=True)

    def test_amortized_nre_negligible_at_max_reuse(self):
        """§5.3: 'when the reusability is taken full advantage of, the
        amortized NRE cost is small enough to be ignored' — under 10%
        of the multi-chip total at (k=4, n=4)."""
        from repro.experiments import run_fig10

        result = run_fig10(situations=((4, 6),))
        entry = result.entry(4, 6, "MCM")
        assert entry.avg_nre / entry.total < 0.10
