"""Module and Chip abstractions (Eq. 3)."""

import pytest

from repro.core.chip import Chip
from repro.core.module import D2D_MODULE_NAME, Module
from repro.d2d.overhead import FractionOverhead
from repro.errors import EmptySystemError, InvalidParameterError
from repro.process.catalog import get_node


class TestModule:
    def test_area_at_same_node(self, n7):
        module = Module("m", 100.0, n7)
        assert module.area_at(n7) == 100.0

    def test_area_at_other_node_scales(self, n7, n14):
        module = Module("m", 100.0, n14)
        expected = 100.0 * n14.transistor_density / n7.transistor_density
        assert module.area_at(n7) == pytest.approx(expected)

    def test_unscalable_module_keeps_area(self, n7, n14):
        module = Module("io", 100.0, n14, scalable_fraction=0.0)
        assert module.area_at(n7) == 100.0

    def test_invalid_area_rejected(self, n7):
        with pytest.raises(InvalidParameterError):
            Module("m", 0.0, n7)

    def test_invalid_fraction_rejected(self, n7):
        with pytest.raises(InvalidParameterError):
            Module("m", 100.0, n7, scalable_fraction=2.0)

    def test_reserved_name_rejected(self, n7):
        with pytest.raises(InvalidParameterError):
            Module(D2D_MODULE_NAME, 100.0, n7)

    def test_identity_equality(self, n7):
        a = Module("m", 100.0, n7)
        b = Module("m", 100.0, n7)
        assert a != b
        assert a == a
        assert len({id(a), id(b)}) == 2


class TestChip:
    def test_soc_die_has_no_d2d(self, simple_module, n7):
        die = Chip.of("die", (simple_module,), n7)
        assert die.d2d_area == 0.0
        assert die.area == die.module_area
        assert not die.is_chiplet

    def test_chiplet_area_includes_d2d(self, simple_module, n7):
        chip = Chip.of("c", (simple_module,), n7, d2d=FractionOverhead(0.10))
        assert chip.module_area == pytest.approx(200.0)
        assert chip.area == pytest.approx(200.0 / 0.9)
        assert chip.is_chiplet

    def test_module_area_sums_instances(self, simple_module, n7):
        chip = Chip.of("c", (simple_module, simple_module), n7)
        assert chip.module_area == pytest.approx(400.0)

    def test_module_area_retargets_to_chip_node(self, n7, n14):
        module = Module("m", 100.0, n14)
        chip = Chip.of("c", (module,), n7)
        assert chip.module_area == pytest.approx(module.area_at(n7))

    def test_unique_modules_identity_based(self, n7):
        a = Module("a", 50.0, n7)
        b = Module("b", 50.0, n7)
        chip = Chip.of("c", (a, a, b), n7)
        assert chip.unique_modules() == [a, b]

    def test_empty_chip_rejected(self, n7):
        with pytest.raises(EmptySystemError):
            Chip.of("c", (), n7)

    def test_heterogeneous_mature_center_keeps_area(self):
        """The OCME heterogeneity setting: an unscalable module costs no
        area when moved to the mature node."""
        n7, n14 = get_node("7nm"), get_node("14nm")
        module = Module("center", 160.0, n7, scalable_fraction=0.0)
        advanced = Chip.of("c7", (module,), n7, d2d=FractionOverhead(0.10))
        mature = Chip.of("c14", (module,), n14, d2d=FractionOverhead(0.10))
        assert mature.area == pytest.approx(advanced.area)
