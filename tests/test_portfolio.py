"""Portfolio NRE amortization (Eqs. 7-8 with sharing)."""

import pytest

from repro.core.chip import Chip
from repro.core.module import Module
from repro.core.nre_cost import chip_design_nre, compute_system_nre
from repro.core.package_design import PackageDesign
from repro.core.system import multichip, soc
from repro.d2d.overhead import FractionOverhead
from repro.errors import EmptySystemError, InvalidParameterError
from repro.reuse.portfolio import Portfolio


class TestSingleSystem:
    def test_matches_standalone_nre(self, simple_soc):
        """A one-system portfolio amortizes exactly like Eq. (7)."""
        portfolio = Portfolio([simple_soc])
        amortized = portfolio.amortized_nre(simple_soc)
        standalone = compute_system_nre(simple_soc)
        assert amortized.total == pytest.approx(
            standalone.total / simple_soc.quantity
        )
        for component in ("modules", "chips", "packages", "d2d"):
            assert getattr(amortized, component) == pytest.approx(
                getattr(standalone, component) / simple_soc.quantity
            )

    def test_multichip_single_system(self, simple_mcm):
        portfolio = Portfolio([simple_mcm])
        amortized = portfolio.amortized_nre(simple_mcm)
        standalone = compute_system_nre(simple_mcm)
        assert amortized.total == pytest.approx(
            standalone.total / simple_mcm.quantity
        )


class TestSharing:
    def test_shared_chip_split_equally_per_unit(
        self, simple_chiplet, mcm_tech
    ):
        """Two systems sharing a chiplet each bear half its NRE per unit
        (equal quantities), regardless of instance counts."""
        one = multichip("one", [simple_chiplet], mcm_tech, quantity=1000.0)
        four = multichip(
            "four", [simple_chiplet] * 4, mcm_tech, quantity=1000.0
        )
        portfolio = Portfolio([one, four])
        nre = chip_design_nre(simple_chiplet)
        share_one = portfolio.amortized_nre(one).chips
        share_four = portfolio.amortized_nre(four).chips
        assert share_one == pytest.approx(nre / 2000.0)
        assert share_four == pytest.approx(nre / 2000.0)

    def test_quantity_weighted_denominator(self, simple_chiplet, mcm_tech):
        small = multichip("s", [simple_chiplet], mcm_tech, quantity=1000.0)
        big = multichip("b", [simple_chiplet], mcm_tech, quantity=3000.0)
        portfolio = Portfolio([small, big])
        nre = chip_design_nre(simple_chiplet)
        assert portfolio.amortized_nre(small).chips == pytest.approx(
            nre / 4000.0
        )

    def test_unshared_chips_fully_owned(self, n7, mcm_tech):
        d2d = FractionOverhead(0.10)
        a = Chip.of("a", (Module("ma", 100.0, n7),), n7, d2d=d2d)
        b = Chip.of("b", (Module("mb", 100.0, n7),), n7, d2d=d2d)
        sys_a = multichip("sa", [a], mcm_tech, quantity=1000.0)
        sys_b = multichip("sb", [b], mcm_tech, quantity=1000.0)
        portfolio = Portfolio([sys_a, sys_b])
        assert portfolio.amortized_nre(sys_a).chips == pytest.approx(
            chip_design_nre(a) / 1000.0
        )

    def test_shared_package_design(self, simple_chiplet, mcm_tech):
        design = PackageDesign.for_chips(
            "shared", mcm_tech, [simple_chiplet.area] * 4
        )
        systems = [
            multichip(
                f"s{i}",
                [simple_chiplet] * (i + 1),
                mcm_tech,
                quantity=1000.0,
                package=design,
            )
            for i in range(3)
        ]
        portfolio = Portfolio(systems)
        for system in systems:
            assert portfolio.amortized_nre(system).packages == pytest.approx(
                design.nre / 3000.0
            )

    def test_d2d_shared_across_systems(self, simple_chiplet, mcm_tech, n7):
        one = multichip("one", [simple_chiplet], mcm_tech, quantity=1000.0)
        two = multichip("two", [simple_chiplet] * 2, mcm_tech, quantity=1000.0)
        portfolio = Portfolio([one, two])
        assert portfolio.amortized_nre(one).d2d == pytest.approx(
            n7.d2d_interface_nre / 2000.0
        )

    def test_soc_systems_share_modules_not_chips(self, n7, soc_pkg):
        module = Module("m", 200.0, n7)
        small = soc("small", [module], n7, soc_pkg, quantity=1000.0)
        large = soc("large", [module, module], n7, soc_pkg, quantity=1000.0)
        portfolio = Portfolio([small, large])
        module_nre_total = n7.km_per_mm2 * 200.0
        assert portfolio.amortized_nre(small).modules == pytest.approx(
            module_nre_total / 2000.0
        )
        # Chips are distinct designs: each fully owned.
        small_chip_nre = chip_design_nre(small.chips[0])
        assert portfolio.amortized_nre(small).chips == pytest.approx(
            small_chip_nre / 1000.0
        )


class TestAggregates:
    def test_total_nre_counts_each_design_once(self, simple_chiplet, mcm_tech):
        one = multichip("one", [simple_chiplet], mcm_tech, quantity=1000.0)
        four = multichip("four", [simple_chiplet] * 4, mcm_tech, quantity=1000.0)
        portfolio = Portfolio([one, four])
        total = portfolio.total_nre()
        assert total.chips == pytest.approx(chip_design_nre(simple_chiplet))

    def test_amortized_spend_equals_total_nre(self, simple_chiplet, mcm_tech):
        """Conservation: summing per-unit NRE shares over all production
        recovers the portfolio NRE exactly."""
        one = multichip("one", [simple_chiplet], mcm_tech, quantity=1500.0)
        four = multichip("four", [simple_chiplet] * 4, mcm_tech, quantity=500.0)
        portfolio = Portfolio([one, four])
        recovered = sum(
            portfolio.amortized_nre(system).total * system.quantity
            for system in portfolio.systems
        )
        assert recovered == pytest.approx(portfolio.total_nre().total)

    def test_average_cost_weighted(self, simple_chiplet, mcm_tech):
        one = multichip("one", [simple_chiplet], mcm_tech, quantity=1000.0)
        four = multichip("four", [simple_chiplet] * 4, mcm_tech, quantity=1000.0)
        portfolio = Portfolio([one, four])
        costs = [
            portfolio.amortized_cost(system).total for system in portfolio
        ]
        assert portfolio.average_cost() == pytest.approx(sum(costs) / 2)


class TestValidation:
    def test_empty_portfolio_rejected(self):
        with pytest.raises(EmptySystemError):
            Portfolio([])

    def test_duplicate_names_rejected(self, simple_chiplet, mcm_tech):
        a = multichip("dup", [simple_chiplet], mcm_tech, quantity=1.0)
        b = multichip("dup", [simple_chiplet], mcm_tech, quantity=1.0)
        with pytest.raises(InvalidParameterError):
            Portfolio([a, b])

    def test_non_member_rejected(self, simple_chiplet, mcm_tech):
        member = multichip("m", [simple_chiplet], mcm_tech, quantity=1.0)
        outsider = multichip("o", [simple_chiplet], mcm_tech, quantity=1.0)
        portfolio = Portfolio([member])
        with pytest.raises(InvalidParameterError):
            portfolio.amortized_nre(outsider)

    def test_len_and_iter(self, simple_chiplet, mcm_tech):
        systems = [
            multichip(f"s{i}", [simple_chiplet], mcm_tech, quantity=1.0)
            for i in range(3)
        ]
        portfolio = Portfolio(systems)
        assert len(portfolio) == 3
        assert list(portfolio) == systems
