"""Content-addressed result store: atomic writes, checksum verification,
quarantine, and the shared canonical-JSON hashing."""

import json
import os

import pytest

from repro.corpus.hashing import (
    canonical_hash,
    registry_hash,
    registry_snapshot,
    spec_hash,
)
from repro.corpus.store import ResultStore, StoreKey
from repro.errors import StoreCorruptionError
from repro.ioutil import atomic_write_text, sweep_temp_files
from repro.reuse.keys import stable_json

PAYLOAD = {
    "scenario": "s",
    "study": "sweep",
    "kind": "partition_sweep",
    "text": "table",
    "rows": [{"chiplets": 1, "RE total": 123.456}],
}


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "store"))


@pytest.fixture
def key():
    return StoreKey(spec_hash="aa" * 32, registry_hash="bb" * 32)


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "hello")
        with open(path) as handle:
            assert handle.read() == "hello"

    def test_no_temp_files_left(self, tmp_path):
        atomic_write_text(str(tmp_path / "out.txt"), "hello")
        assert [n for n in os.listdir(tmp_path) if ".tmp." in n] == []

    def test_failure_leaves_previous_file_intact(self, tmp_path, monkeypatch):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "original")

        def boom(_fd):
            raise OSError("disk full")

        monkeypatch.setattr(os, "fsync", boom)
        with pytest.raises(OSError):
            atomic_write_text(path, "replacement")
        with open(path) as handle:
            assert handle.read() == "original"
        assert [n for n in os.listdir(tmp_path) if ".tmp." in n] == []

    def test_sweep_removes_orphaned_temp_files(self, tmp_path):
        orphan = tmp_path / "entry.json.tmp.12345"
        orphan.write_text("partial")
        keeper = tmp_path / "entry.json"
        keeper.write_text("complete")
        removed = sweep_temp_files(str(tmp_path))
        assert removed == [str(orphan)]
        assert keeper.exists() and not orphan.exists()


class TestStoreRoundTrip:
    def test_put_then_load(self, store, key):
        store.put(key, PAYLOAD)
        assert store.load(key) == PAYLOAD

    def test_missing_entry_is_none(self, store, key):
        assert store.load(key) is None
        assert not store.has(key)

    def test_entry_path_is_sharded_by_spec_hash(self, store, key):
        path = store.put(key, PAYLOAD)
        assert os.path.join("objects", key.spec_hash[:2]) in path
        assert path.endswith(f"{key.spec_hash}-{key.registry_hash}.json")

    def test_put_is_bit_stable(self, store, key):
        path = store.put(key, PAYLOAD)
        with open(path, "rb") as handle:
            first = handle.read()
        store.put(key, json.loads(stable_json(PAYLOAD)))
        with open(path, "rb") as handle:
            assert handle.read() == first

    def test_entry_checksum_covers_payload(self, store, key):
        path = store.put(key, PAYLOAD)
        with open(path) as handle:
            entry = json.load(handle)
        assert entry["format"] == 1
        assert entry["sha256"] == canonical_hash(entry["payload"])

    def test_entry_count(self, store, key):
        assert store.entry_count() == 0
        store.put(key, PAYLOAD)
        assert store.entry_count() == 1


class TestCorruptionDetection:
    def test_flipped_payload_byte_raises(self, store, key):
        path = store.put(key, PAYLOAD)
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text.replace("123.456", "999.456"))
        with pytest.raises(StoreCorruptionError, match="checksum mismatch"):
            store.load(key)

    def test_truncated_entry_raises(self, store, key):
        path = store.put(key, PAYLOAD)
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text[: len(text) // 2])
        with pytest.raises(StoreCorruptionError, match="invalid JSON"):
            store.load(key)

    def test_quarantine_moves_entry_aside(self, store, key):
        path = store.put(key, PAYLOAD)
        target = store.quarantine(key)
        assert target is not None and target.endswith(".corrupt")
        assert not os.path.exists(path)
        assert os.path.exists(target)
        assert store.load(key) is None

    def test_quarantine_twice_uses_distinct_names(self, store, key):
        store.put(key, PAYLOAD)
        first = store.quarantine(key)
        store.put(key, PAYLOAD)
        second = store.quarantine(key)
        assert first != second

    def test_quarantine_of_missing_entry_is_none(self, store, key):
        assert store.quarantine(key) is None


class TestHashing:
    SECTIONS = {"nodes": {"x": {"base": "7nm", "wafer_price": 1.0}}}

    def test_spec_hash_deterministic(self):
        study = {"kind": "partition_sweep", "name": "s", "module_area": 100}
        assert spec_hash(study, {}) == spec_hash(dict(study), {})

    def test_spec_hash_sensitive_to_study_fields(self):
        a = spec_hash({"kind": "partition_sweep", "module_area": 100}, {})
        b = spec_hash({"kind": "partition_sweep", "module_area": 200}, {})
        assert a != b

    def test_spec_hash_sensitive_to_sections(self):
        study = {"kind": "partition_sweep", "module_area": 100}
        assert spec_hash(study, {}) != spec_hash(study, self.SECTIONS)

    def test_empty_sections_hash_like_absent_sections(self):
        study = {"kind": "montecarlo", "draws": 10}
        assert spec_hash(study, {"nodes": {}}) == spec_hash(study, {})

    def test_registry_hash_stable_and_covers_all_registries(self):
        snapshot = registry_snapshot()
        assert set(snapshot) == {
            "nodes", "technologies", "d2d_interfaces",
            "yield_models", "wafer_geometries",
        }
        assert "7nm" in snapshot["nodes"]
        assert registry_hash() == registry_hash()

    def test_registry_hash_changes_with_registry_content(self):
        from repro.registry.nodes import node_registry

        before = registry_hash()
        registry = node_registry()
        registry.register_spec(
            "corpus-test-node", {"base": "7nm", "wafer_price": 4321.0}
        )
        try:
            assert registry_hash() != before
        finally:
            registry.unregister("corpus-test-node")
        assert registry_hash() == before
