"""Reuse volume sweeps declared from scenario JSON: spec round-trip,
runner output and parity, sink rows, and end-to-end export."""

import csv
import json

import pytest

from repro.engine.costengine import CostEngine
from repro.engine.fastportfolio import PortfolioEngine
from repro.errors import ConfigError
from repro.scenario import (
    ReuseStudy,
    ScenarioRunner,
    scenario_from_dict,
    study_from_dict,
    study_to_dict,
)

SCALES = (0.25, 1.0, 4.0)


def _spec_dict(**overrides) -> dict:
    study = {
        "kind": "reuse",
        "name": "scms-volume",
        "scheme": "scms",
        "technology": "mcm",
        "params": {"module_area": 150.0, "node": "7nm",
                   "counts": [1, 2], "quantity": 500000.0},
        "volume_sweep": list(SCALES),
    }
    study.update(overrides)
    return {"scenario": "volume", "studies": [study]}


@pytest.fixture(scope="module")
def result():
    spec = scenario_from_dict(_spec_dict())
    return ScenarioRunner().run(spec).result("scms-volume")


class TestSpec:
    def test_round_trip_preserves_scales(self):
        study = study_from_dict(_spec_dict()["studies"][0])
        assert isinstance(study, ReuseStudy)
        assert study.volume_sweep == SCALES
        assert study_from_dict(study_to_dict(study)) == study

    def test_non_positive_scale_rejected(self):
        for bad in (0.0, -2.0, "x"):
            with pytest.raises(ConfigError, match="volume_sweep"):
                study_from_dict(
                    _spec_dict(volume_sweep=[1.0, bad])["studies"][0]
                )

    def test_default_is_no_sweep(self):
        study = study_from_dict(
            {k: v for k, v in _spec_dict()["studies"][0].items()
             if k != "volume_sweep"}
        )
        assert study.volume_sweep == ()


class TestRunner:
    def test_renders_sweep_table(self, result):
        assert "volume sweep, average total USD/unit" in result.text

    def test_data_carries_solves(self, result):
        solves = result.data["volume_sweep"]
        assert set(solves) == set(result.data["costs"])
        for solve in solves.values():
            assert solve.scales == SCALES

    def test_sweep_rows_exported(self, result):
        sweep_rows = [row for row in result.rows if "scale" in row]
        variants = {row["variant"] for row in sweep_rows}
        assert variants == set(result.data["costs"])
        # one row per (variant, scale, system)
        n_systems = len(
            next(iter(result.data["costs"].values())).portfolio.systems
        )
        assert len(sweep_rows) == len(variants) * len(SCALES) * n_systems

    def test_rows_match_direct_volume_solve(self, result):
        """Sink rows are bit-identical to a direct PortfolioEngine solve."""
        engine = PortfolioEngine(CostEngine())
        for variant, costs in result.data["costs"].items():
            solve = engine.volume_solve(costs.portfolio, SCALES)
            rows = [
                row for row in result.rows
                if row.get("variant") == variant and "scale" in row
            ]
            for index, scale in enumerate(SCALES):
                at_scale = [row for row in rows if row["scale"] == scale]
                assert [row["total"] for row in at_scale] == list(
                    solve.point_totals(index)
                )
                assert all(
                    row["average_total"] == solve.point_average(index)
                    for row in at_scale
                )

    def test_base_rows_still_present(self, result):
        base_rows = [row for row in result.rows if "scale" not in row]
        assert base_rows and all("re" in row for row in base_rows)


class TestEndToEnd:
    def test_example_scenario_sinks(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "run", "examples/scenario_volume_sweep.json",
            "--sink-dir", str(tmp_path),
        ])
        assert code == 0
        capsys.readouterr()
        with open(tmp_path / "reuse-volume-sweep__scms-volume.csv",
                  newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert "scale" in rows[0] and "average_total" in rows[0]
        scales = {row["scale"] for row in rows if row["scale"]}
        assert scales == {"0.25", "0.5", "1.0", "2.0", "4.0"}
        payload = json.loads(
            (tmp_path / "reuse-volume-sweep__fsmc-volume-pessimistic.json")
            .read_text()
        )
        assert any("scale" in row for row in payload["rows"])
