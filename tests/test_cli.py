"""CLI commands end to end (in-process, via main())."""

import pytest

from repro.cli import main
from repro.config import save_portfolio
from repro.packaging.mcm import mcm
from repro.reuse.scms import SCMSConfig, build_scms


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_nodes_lists_catalog(capsys):
    code, out, _err = run_cli(capsys, "nodes")
    assert code == 0
    for name in ("3nm", "5nm", "7nm", "14nm", "rdl", "si"):
        assert name in out


def test_cost_soc(capsys):
    code, out, _err = run_cli(
        capsys, "cost", "--area", "800", "--node", "5nm"
    )
    assert code == 0
    assert "RE raw_chips" in out
    assert "total per unit" in out


def test_cost_mcm(capsys):
    code, out, _err = run_cli(
        capsys,
        "cost",
        "--area", "800",
        "--node", "5nm",
        "--integration", "mcm",
        "--chiplets", "2",
    )
    assert code == 0
    assert "mcm" in out


def test_compare_ranks_schemes(capsys):
    code, out, _err = run_cli(
        capsys,
        "compare",
        "--area", "800",
        "--node", "5nm",
        "--quantity", "10000000",
    )
    assert code == 0
    for label in ("SoC", "MCM", "InFO", "2.5D"):
        assert label in out


def test_payback_reports_quantity(capsys):
    code, out, _err = run_cli(
        capsys, "payback", "--area", "800", "--node", "5nm"
    )
    assert code == 0
    assert "pays back" in out


def test_payback_never(capsys):
    code, out, _err = run_cli(
        capsys,
        "payback",
        "--area", "100",
        "--node", "14nm",
        "--integration", "2.5d",
    )
    assert code == 0
    assert "never" in out


@pytest.mark.parametrize("figure", ["2", "5", "6", "8", "9"])
def test_figure_commands(capsys, figure):
    code, out, _err = run_cli(capsys, "figure", figure)
    assert code == 0
    assert f"Fig. {figure}" in out


def test_unknown_figure_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["figure", "3"])


def test_unknown_node_is_clean_error(capsys):
    code, _out, err = run_cli(
        capsys, "cost", "--area", "100", "--node", "4nm"
    )
    assert code == 2
    assert "error:" in err


def test_portfolio_report(capsys, tmp_path):
    study = build_scms(SCMSConfig(counts=(1, 2)), mcm())
    path = str(tmp_path / "p.json")
    save_portfolio(study.chiplet, path)
    code, out, _err = run_cli(capsys, "portfolio", path)
    assert code == 0
    assert "mcm-1x" in out
    assert "(average)" in out


def test_techs_lists_registries(capsys):
    code, out, _err = run_cli(capsys, "techs")
    assert code == 0
    for name in ("soc", "mcm", "info", "2.5d", "3d"):
        assert name in out
    assert "serdes-xsr" in out
    assert "parallel-interposer" in out


def test_run_scenario(capsys, tmp_path):
    import json

    scenario = {
        "scenario": "cli-test",
        "nodes": {"7hp": {"base": "7nm", "defect_density": 0.12}},
        "technologies": {
            "hv": {"base": "2.5d", "params": {"chip_attach_yield": 0.95}}
        },
        "studies": [
            {
                "kind": "partition_sweep",
                "name": "sweep",
                "module_area": 500.0,
                "node": "7hp",
                "technology": "hv",
                "chiplet_counts": [1, 2, 3],
            },
            {"kind": "figure", "name": "f2", "figure": 2,
             "params": {"areas": [100, 200, 300, 400]}},
        ],
    }
    path = tmp_path / "scenario.json"
    path.write_text(json.dumps(scenario))
    code, out, _err = run_cli(capsys, "run", str(path))
    assert code == 0
    assert "Scenario: cli-test" in out
    assert "=== sweep ===" in out
    assert "=== f2 ===" in out
    assert "7hp" in out

    # --study filters to one study
    code, out, _err = run_cli(capsys, "run", str(path), "--study", "sweep")
    assert code == 0
    assert "=== sweep ===" in out
    assert "=== f2 ===" not in out

    # unknown study name is a clean error
    code, _out, err = run_cli(capsys, "run", str(path), "--study", "nope")
    assert code == 2
    assert "error:" in err


def test_run_invalid_file_is_clean_error(capsys, tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    code, _out, err = run_cli(capsys, "run", str(path))
    assert code == 2
    assert "error:" in err


def test_search_reports_frontier_and_top(capsys):
    code, out, _err = run_cli(
        capsys,
        "search",
        "--areas", "300,600",
        "--nodes", "7nm,14nm",
        "--technologies", "mcm",
        "--chiplets", "2,3",
        "--top-k", "3",
    )
    assert code == 0
    assert "Design-space search: 12 candidates" in out
    assert "objectives total/footprint" in out
    assert "frontier" in out
    assert "top" in out
    assert "soc x1" in out


def test_search_area_range_spec(capsys):
    code, out, _err = run_cli(
        capsys,
        "search",
        "--areas", "200:400:100",
        "--nodes", "7nm",
        "--technologies", "mcm",
        "--chiplets", "2",
        "--no-soc",
    )
    assert code == 0
    # 3 areas x 1 node x 1 tech x 1 count, no SoC reference
    assert "Design-space search: 3 candidates" in out


def test_search_named_yield_model_repriced(capsys):
    argv = ["search", "--areas", "600", "--nodes", "7nm",
            "--technologies", "mcm", "--chiplets", "2,3", "--top-k", "2"]
    code, base, _err = run_cli(capsys, *argv)
    assert code == 0
    code, priced, _err = run_cli(
        capsys, *argv, "--yield-model", "murphy",
        "--wafer-geometry", "450mm",
    )
    assert code == 0
    assert base != priced


def test_search_test_cost_objective(capsys):
    code, out, _err = run_cli(
        capsys,
        "search",
        "--areas", "600",
        "--nodes", "7nm",
        "--technologies", "mcm",
        "--chiplets", "2,3",
        "--test-cost",
        "--objectives", "test_cost,total",
    )
    assert code == 0
    assert "objectives test_cost/total" in out


@pytest.mark.parametrize("areas", ["100:900", "100:900:0", "abc"])
def test_search_bad_area_spec_is_clean_error(capsys, areas):
    code, _out, err = run_cli(capsys, "search", "--areas", areas)
    assert code == 2
    assert "error:" in err


def test_search_unknown_objective_is_clean_error(capsys):
    code, _out, err = run_cli(
        capsys, "search", "--areas", "600", "--objectives", "total,warp"
    )
    assert code == 2
    assert "error:" in err
    assert "unknown objective" in err
