"""Decision procedures (Section 6)."""

import pytest

from repro.core.total import compute_total_cost
from repro.errors import InvalidParameterError
from repro.explore.decide import (
    choose_integration,
    granularity_marginal_utility,
    moore_limit_proximity,
    multichip_payback_quantity,
    package_reuse_break_even,
)
from repro.explore.partition import partition_monolith, soc_reference
from repro.packaging.info import info
from repro.packaging.interposer import interposer_25d
from repro.packaging.mcm import mcm
from repro.process.catalog import get_node
from repro.reuse.scms import SCMSConfig, build_scms
from repro.wafer.geometry import RETICLE_LIMIT_MM2


class TestChooseIntegration:
    def test_ranked_ascending(self, n5):
        choices = choose_integration(
            800.0, n5, 2, 2e6, [mcm(), info(), interposer_25d()]
        )
        totals = [choice.total_per_unit for choice in choices]
        assert totals == sorted(totals)
        assert len(choices) == 4  # SoC + three candidates

    def test_small_chip_small_quantity_prefers_soc(self, n5):
        choices = choose_integration(100.0, n5, 2, 1e5, [mcm()])
        assert choices[0].label == "SoC"

    def test_large_chip_large_quantity_prefers_multichip(self, n5):
        choices = choose_integration(800.0, n5, 2, 1e7, [mcm()])
        assert choices[0].label == "MCM"

    def test_invalid_quantity(self, n5):
        with pytest.raises(InvalidParameterError):
            choose_integration(800.0, n5, 2, 0.0, [mcm()])


class TestPayback:
    def test_payback_is_crossover(self, n5):
        soc_system = soc_reference(800.0, n5)
        multi = partition_monolith(800.0, n5, 2, mcm())
        quantity = multichip_payback_quantity(soc_system, multi)
        assert quantity is not None
        below = quantity * 0.9
        above = quantity * 1.1
        assert (
            compute_total_cost(multi, below).total
            > compute_total_cost(soc_system, below).total
        )
        assert (
            compute_total_cost(multi, above).total
            < compute_total_cost(soc_system, above).total
        )

    def test_never_pays_back_returns_none(self, n14):
        """A small mature-node chip: partitioning never pays."""
        soc_system = soc_reference(100.0, n14)
        multi = partition_monolith(100.0, n14, 2, interposer_25d())
        assert multichip_payback_quantity(soc_system, multi) is None

    def test_returns_low_when_already_cheaper(self, n5):
        # Starting the search above the crossover returns the low bound.
        soc_system = soc_reference(800.0, n5)
        multi = partition_monolith(800.0, n5, 2, mcm())
        assert (
            multichip_payback_quantity(soc_system, multi, low=1e8, high=1e9)
            == 1e8
        )

    def test_invalid_range(self, n5):
        soc_system = soc_reference(800.0, n5)
        multi = partition_monolith(800.0, n5, 2, mcm())
        with pytest.raises(InvalidParameterError):
            multichip_payback_quantity(soc_system, multi, low=10.0, high=5.0)


class TestGranularity:
    def test_marginal_utility_decreases(self, n5):
        """The paper: die-defect savings have marginal utility."""
        steps = granularity_marginal_utility(
            800.0, n5, mcm(), counts=(1, 2, 3, 5)
        )
        ratios = [step.defect_saving_ratio for step in steps]
        assert ratios == sorted(ratios, reverse=True)
        assert all(step.defect_saving > 0 for step in steps)

    def test_unsorted_counts_rejected(self, n5):
        with pytest.raises(InvalidParameterError):
            granularity_marginal_utility(800.0, n5, mcm(), counts=(3, 2))

    def test_step_fields(self, n5):
        steps = granularity_marginal_utility(800.0, n5, mcm(), counts=(1, 2))
        [step] = steps
        assert step.from_chiplets == 1
        assert step.to_chiplets == 2
        assert step.re_delta == pytest.approx(
            step.re_total_after - step.re_total_before
        )


class TestPackageReuseBreakEven:
    def test_verdict_fields(self):
        study = build_scms(SCMSConfig(), mcm())
        verdict = package_reuse_break_even(
            study.chiplet, study.chiplet_package_reused
        )
        assert verdict.cost_without_reuse > 0
        assert verdict.cost_with_reuse > 0
        assert verdict.reuse_pays == (
            verdict.cost_with_reuse < verdict.cost_without_reuse
        )
        assert verdict.saving_ratio == pytest.approx(
            1.0 - verdict.cost_with_reuse / verdict.cost_without_reuse
        )

    def test_25d_reuse_does_not_pay(self):
        study = build_scms(SCMSConfig(), interposer_25d())
        verdict = package_reuse_break_even(
            study.chiplet, study.chiplet_package_reused
        )
        assert not verdict.reuse_pays


class TestMooreLimit:
    def test_reticle_is_unity(self, n5):
        assert moore_limit_proximity(RETICLE_LIMIT_MM2, n5) == pytest.approx(1.0)

    def test_above_limit(self, n5):
        assert moore_limit_proximity(900.0, n5) > 1.0

    def test_invalid_area(self, n5):
        with pytest.raises(InvalidParameterError):
            moore_limit_proximity(0.0, n5)
