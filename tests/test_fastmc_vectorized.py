"""Vectorized Monte-Carlo draws: bit parity and fallback behavior."""

import random

import pytest

from repro.core.chip import Chip
from repro.core.module import Module
from repro.core.system import multichip
from repro.d2d.overhead import FractionOverhead
from repro.engine.fastmc import MonteCarloPlan, _sample_loop, sample_re_costs
from repro.errors import InvalidParameterError
from repro.explore.montecarlo import monte_carlo_cost_naive
from repro.explore.partition import partition_monolith, soc_reference
from repro.packaging.interposer import interposer_25d
from repro.packaging.mcm import mcm
from repro.process.catalog import get_node
from repro.yieldmodel.sampling import DefectDensityPrior

numpy = pytest.importorskip("numpy")


def _systems():
    n7, n14 = get_node("7nm"), get_node("14nm")
    hetero = multichip(
        "hetero",
        [
            Chip.of("a", (Module("ma", 150.0, n7),), n7,
                    d2d=FractionOverhead(0.1)),
            Chip.of("b", (Module("mb", 200.0, n14),), n14,
                    d2d=FractionOverhead(0.1)),
        ],
        mcm(),
    )
    return [
        soc_reference(400.0, n7),
        partition_monolith(800.0, get_node("5nm"), 4, interposer_25d()),
        partition_monolith(600.0, n7, 3, mcm()),
        hetero,
    ]


class TestBitParity:
    @pytest.mark.parametrize("system", _systems(), ids=lambda s: s.name)
    def test_vectorized_equals_oracle_exactly(self, system):
        """Draw-for-draw float equality against the object-rebuilding
        oracle — not approx: the parity contract is bitwise."""
        fast = sample_re_costs(system, draws=200, sigma=0.15, seed=11)
        naive = monte_carlo_cost_naive(system, draws=200, sigma=0.15, seed=11)
        assert tuple(fast) == naive.samples

    @pytest.mark.parametrize("system", _systems()[:2], ids=lambda s: s.name)
    def test_scalar_loop_equals_vectorized(self, system):
        """The numpy-free fallback produces the identical stream."""
        plan = MonteCarloPlan.compile(system)
        prior = DefectDensityPrior(mode=1.0, sigma=0.15)
        loop = _sample_loop(plan, random.Random(3), prior, 150)
        fast = sample_re_costs(system, draws=150, sigma=0.15, seed=3)
        assert loop == fast

    def test_evaluate_batch_matches_evaluate(self):
        system = partition_monolith(500.0, get_node("7nm"), 2, mcm())
        plan = MonteCarloPlan.compile(system)
        rows = [[0.8], [1.0], [1.3]]
        batch = plan.evaluate_batch(rows)
        scalar = [
            plan.evaluate({plan.node_names[0]: row[0]}) for row in rows
        ]
        assert batch == scalar

    def test_different_sigma_and_seed(self):
        system = partition_monolith(700.0, get_node("5nm"), 5, interposer_25d())
        for seed in (0, 1, 99):
            fast = sample_re_costs(system, draws=60, sigma=0.3, seed=seed)
            naive = monte_carlo_cost_naive(system, draws=60, sigma=0.3,
                                           seed=seed)
            assert tuple(fast) == naive.samples


class TestGuards:
    def test_batch_without_affine_rejected(self):
        system = partition_monolith(500.0, get_node("7nm"), 2, mcm())
        plan = MonteCarloPlan.compile(system)
        broken = MonteCarloPlan(
            node_names=plan.node_names,
            terms=plan.terms,
            affine=None,
            system=plan.system,
        )
        with pytest.raises(InvalidParameterError):
            broken.evaluate_batch([[1.0]])

    def test_zero_draws_rejected(self):
        with pytest.raises(InvalidParameterError):
            sample_re_costs(soc_reference(100.0, get_node("7nm")), draws=0)

    def test_returns_plain_floats(self):
        samples = sample_re_costs(
            soc_reference(100.0, get_node("7nm")), draws=5
        )
        assert all(type(value) is float for value in samples)
