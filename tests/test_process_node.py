"""ProcessNode construction, validation and derived properties."""

import math

import pytest

from repro.errors import InvalidParameterError
from repro.process.node import ProcessNode


def make_node(**overrides):
    params = dict(
        name="test",
        defect_density=0.09,
        cluster_param=10.0,
        wafer_price=9346.0,
    )
    params.update(overrides)
    return ProcessNode(**params)


class TestValidation:
    def test_negative_defect_density_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_node(defect_density=-0.1)

    def test_zero_defect_density_allowed(self):
        assert make_node(defect_density=0.0).defect_density == 0.0

    def test_nonpositive_cluster_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_node(cluster_param=0.0)
        with pytest.raises(InvalidParameterError):
            make_node(cluster_param=-1.0)

    def test_negative_wafer_price_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_node(wafer_price=-1.0)

    def test_nonpositive_diameter_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_node(wafer_diameter=0.0)


class TestDerivedProperties:
    def test_wafer_area_is_circle(self):
        node = make_node(wafer_diameter=300.0)
        assert node.wafer_area == pytest.approx(math.pi * 150.0**2)

    def test_wafer_cost_per_mm2(self):
        node = make_node(wafer_price=7068.58, wafer_diameter=300.0)
        assert node.wafer_cost_per_mm2 == pytest.approx(
            7068.58 / (math.pi * 22500.0)
        )

    def test_fixed_chip_nre_sums_masks_and_ip(self):
        node = make_node(mask_set_cost=14e6, ip_fixed_cost=96e6)
        assert node.fixed_chip_nre == pytest.approx(110e6)

    def test_default_packaging_flag_false(self):
        assert make_node().is_packaging_node is False


class TestEvolve:
    def test_evolve_replaces_field(self):
        node = make_node()
        early = node.evolve(defect_density=0.13)
        assert early.defect_density == 0.13
        assert early.name == node.name

    def test_evolve_does_not_mutate_original(self):
        node = make_node()
        node.evolve(defect_density=0.5)
        assert node.defect_density == 0.09

    def test_with_defect_density(self):
        node = make_node()
        assert node.with_defect_density(0.2).defect_density == 0.2

    def test_evolve_validates(self):
        with pytest.raises(InvalidParameterError):
            make_node().evolve(defect_density=-1.0)

    def test_nodes_are_frozen(self):
        node = make_node()
        with pytest.raises(Exception):
            node.defect_density = 0.5  # type: ignore[misc]
