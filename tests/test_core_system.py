"""System construction and invariants."""

import pytest

from repro.core.chip import Chip
from repro.core.module import Module
from repro.core.package_design import PackageDesign
from repro.core.system import System, chiplet, multichip, soc
from repro.d2d.overhead import FractionOverhead
from repro.errors import EmptySystemError, InvalidParameterError


class TestConstruction:
    def test_soc_constructor(self, simple_module, n7, soc_pkg):
        system = soc("s", [simple_module], n7, soc_pkg, quantity=1000)
        assert len(system.chips) == 1
        assert not system.is_multichip
        assert not system.chips[0].is_chiplet
        assert system.quantity == 1000

    def test_multichip_constructor(self, simple_chiplet, mcm_tech):
        system = multichip("m", [simple_chiplet] * 3, mcm_tech)
        assert system.is_multichip
        assert len(system.chips) == 3

    def test_chiplet_constructor(self, simple_module, n7, d2d10):
        chip = chiplet("c", [simple_module], n7, d2d10)
        assert chip.is_chiplet

    def test_empty_system_rejected(self, mcm_tech):
        with pytest.raises(EmptySystemError):
            System(name="x", chips=(), integration=mcm_tech)

    def test_nonpositive_quantity_rejected(self, simple_chiplet, mcm_tech):
        with pytest.raises(InvalidParameterError):
            System(
                name="x",
                chips=(simple_chiplet,),
                integration=mcm_tech,
                quantity=0,
            )

    def test_soc_package_rejects_two_chips(self, simple_chiplet, soc_pkg):
        with pytest.raises(InvalidParameterError):
            System(
                name="x",
                chips=(simple_chiplet, simple_chiplet),
                integration=soc_pkg,
            )


class TestAreas:
    def test_silicon_area_sums_chips(self, simple_mcm):
        assert simple_mcm.silicon_area == pytest.approx(2 * 200.0 / 0.9)

    def test_module_area_excludes_d2d(self, simple_mcm):
        assert simple_mcm.module_area == pytest.approx(400.0)

    def test_chip_areas_tuple(self, simple_mcm):
        assert len(simple_mcm.chip_areas) == 2


class TestUniqueness:
    def test_unique_chips_counts_instances(self, simple_chiplet, mcm_tech):
        system = multichip("m", [simple_chiplet] * 4, mcm_tech)
        [(chip, count)] = system.unique_chips()
        assert chip is simple_chiplet
        assert count == 4

    def test_unique_chips_preserves_order(self, n7, d2d10, mcm_tech):
        a = chiplet("a", [Module("ma", 100.0, n7)], n7, d2d10)
        b = chiplet("b", [Module("mb", 100.0, n7)], n7, d2d10)
        system = multichip("m", [a, b, a], mcm_tech)
        chips = system.unique_chips()
        assert [c.name for c, _n in chips] == ["a", "b"]
        assert [n for _c, n in chips] == [2, 1]

    def test_unique_modules_across_chips(self, n7, d2d10, mcm_tech):
        shared = Module("shared", 100.0, n7)
        a = chiplet("a", [shared], n7, d2d10)
        b = chiplet("b", [shared], n7, d2d10)
        system = multichip("m", [a, b], mcm_tech)
        assert system.unique_modules() == [shared]

    def test_chiplet_nodes_deduplicated(self, n7, d2d10, mcm_tech):
        a = chiplet("a", [Module("ma", 100.0, n7)], n7, d2d10)
        b = chiplet("b", [Module("mb", 100.0, n7)], n7, d2d10)
        system = multichip("m", [a, b], mcm_tech)
        assert [node.name for node in system.chiplet_nodes()] == ["7nm"]

    def test_soc_has_no_chiplet_nodes(self, simple_soc):
        assert simple_soc.chiplet_nodes() == []


class TestPackageDesignBinding:
    def test_package_must_match_integration(
        self, simple_chiplet, mcm_tech, interposer_tech
    ):
        design = PackageDesign.for_chips(
            "p", interposer_tech, [simple_chiplet.area]
        )
        with pytest.raises(InvalidParameterError):
            System(
                name="x",
                chips=(simple_chiplet,),
                integration=mcm_tech,
                package=design,
            )

    def test_package_must_fit_chips(self, simple_chiplet, mcm_tech):
        design = PackageDesign.for_chips(
            "p", mcm_tech, [simple_chiplet.area / 2]
        )
        with pytest.raises(InvalidParameterError):
            System(
                name="x",
                chips=(simple_chiplet,),
                integration=mcm_tech,
                package=design,
            )

    def test_fitting_package_accepted(self, simple_chiplet, mcm_tech):
        design = PackageDesign.for_chips(
            "p", mcm_tech, [simple_chiplet.area] * 4
        )
        system = System(
            name="x",
            chips=(simple_chiplet,),
            integration=mcm_tech,
            package=design,
        )
        assert system.package is design
