"""Portfolio semantics for per-node module variants.

The paper: "D2D interfaces under different process nodes are regarded
as diverse modules."  The portfolio generalizes that to every module:
the same module object instantiated on chips at two different nodes is
two *designs*, each amortized over its own users.
"""

import pytest

from repro.core.chip import Chip
from repro.core.module import Module
from repro.core.system import multichip
from repro.d2d.overhead import FractionOverhead
from repro.process.catalog import get_node
from repro.reuse.portfolio import Portfolio


@pytest.fixture
def two_node_portfolio():
    n7, n14 = get_node("7nm"), get_node("14nm")
    shared = Module("shared-ip", 100.0, n7)
    d2d = FractionOverhead(0.10)
    advanced_chip = Chip.of("adv", (shared,), n7, d2d=d2d)
    mature_chip = Chip.of("mat", (shared,), n14, d2d=d2d)
    from repro.packaging.mcm import mcm

    tech = mcm()
    sys_a = multichip("a", [advanced_chip], tech, quantity=1000.0)
    sys_b = multichip("b", [mature_chip], tech, quantity=1000.0)
    return Portfolio([sys_a, sys_b]), sys_a, sys_b, shared


def test_module_redesigned_per_node(two_node_portfolio):
    portfolio, sys_a, sys_b, shared = two_node_portfolio
    n7, n14 = get_node("7nm"), get_node("14nm")
    # Each system fully owns its node-variant of the module design.
    share_a = portfolio.amortized_nre(sys_a).modules
    share_b = portfolio.amortized_nre(sys_b).modules
    assert share_a == pytest.approx(
        n7.km_per_mm2 * shared.area_at(n7) / 1000.0
    )
    assert share_b == pytest.approx(
        n14.km_per_mm2 * shared.area_at(n14) / 1000.0
    )
    # Two genuinely different designs: the shares differ (cheaper Km at
    # 14 nm versus the larger retargeted area).
    assert share_a != pytest.approx(share_b)


def test_total_nre_counts_both_variants(two_node_portfolio):
    portfolio, _a, _b, shared = two_node_portfolio
    n7, n14 = get_node("7nm"), get_node("14nm")
    expected = (
        n7.km_per_mm2 * shared.area_at(n7)
        + n14.km_per_mm2 * shared.area_at(n14)
    )
    assert portfolio.total_nre().modules == pytest.approx(expected)


def test_d2d_units_per_node(two_node_portfolio):
    portfolio, sys_a, sys_b, _shared = two_node_portfolio
    n7, n14 = get_node("7nm"), get_node("14nm")
    assert portfolio.amortized_nre(sys_a).d2d == pytest.approx(
        n7.d2d_interface_nre / 1000.0
    )
    assert portfolio.amortized_nre(sys_b).d2d == pytest.approx(
        n14.d2d_interface_nre / 1000.0
    )


def test_same_node_sharing_still_works():
    """Contrast case: same node -> one design shared by both systems."""
    n7 = get_node("7nm")
    shared = Module("shared-ip", 100.0, n7)
    d2d = FractionOverhead(0.10)
    chip_x = Chip.of("x", (shared,), n7, d2d=d2d)
    chip_y = Chip.of("y", (shared,), n7, d2d=d2d)
    from repro.packaging.mcm import mcm

    tech = mcm()
    sys_x = multichip("x-sys", [chip_x], tech, quantity=1000.0)
    sys_y = multichip("y-sys", [chip_y], tech, quantity=1000.0)
    portfolio = Portfolio([sys_x, sys_y])
    expected = n7.km_per_mm2 * 100.0
    assert portfolio.total_nre().modules == pytest.approx(expected)
    assert portfolio.amortized_nre(sys_x).modules == pytest.approx(
        expected / 2000.0
    )
