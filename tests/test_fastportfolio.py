"""PortfolioEngine: bit-parity with the Portfolio oracle, closed-form
volume sweeps, and reuse edge cases (single system, full sharing,
oversized FSMC sockets)."""

import pytest

from repro.engine.costengine import CostEngine
from repro.engine.fastportfolio import (
    PortfolioEngine,
    default_portfolio_engine,
)
from repro.core.system import multichip
from repro.errors import InvalidParameterError
from repro.packaging.interposer import interposer_25d
from repro.packaging.mcm import mcm
from repro.reuse.fsmc import FSMCConfig, build_fsmc
from repro.reuse.ocme import OCMEConfig, build_ocme
from repro.reuse.portfolio import Portfolio
from repro.reuse.scms import SCMSConfig, build_scms


@pytest.fixture
def engine():
    return PortfolioEngine(CostEngine())


def _assert_bit_identical(engine, portfolio):
    costs = engine.evaluate(portfolio)
    for system, cost in zip(portfolio.systems, costs.costs):
        oracle = portfolio.amortized_cost(system)
        assert cost.re.total == oracle.re.total
        assert cost.re.raw_chips == oracle.re.raw_chips
        assert cost.re.wasted_kgd == oracle.re.wasted_kgd
        assert cost.amortized_nre.modules == oracle.amortized_nre.modules
        assert cost.amortized_nre.chips == oracle.amortized_nre.chips
        assert cost.amortized_nre.packages == oracle.amortized_nre.packages
        assert cost.amortized_nre.d2d == oracle.amortized_nre.d2d
        assert cost.total == oracle.total
        assert cost.quantity == system.quantity
    assert costs.average == portfolio.average_cost()


class TestOracleParity:
    """Engine results must be ``==`` the oracle on the paper studies."""

    def test_scms_fig8(self, engine):
        for tech in (mcm(), interposer_25d()):
            study = build_scms(SCMSConfig(), tech)
            for portfolio in PortfolioEngine.study_portfolios(study).values():
                _assert_bit_identical(engine, portfolio)

    def test_ocme_fig9(self, engine):
        study = build_ocme(OCMEConfig(), mcm())
        for portfolio in PortfolioEngine.study_portfolios(study).values():
            _assert_bit_identical(engine, portfolio)

    def test_fsmc_fig10(self, engine):
        study = build_fsmc(FSMCConfig(n_chiplets=4, k_sockets=3), mcm())
        for portfolio in PortfolioEngine.study_portfolios(study).values():
            _assert_bit_identical(engine, portfolio)

    def test_amortized_cost_drop_in(self, engine):
        study = build_scms(SCMSConfig(), mcm())
        portfolio = study.chiplet_package_reused
        for system in portfolio.systems:
            fast = engine.amortized_cost(portfolio, system)
            oracle = portfolio.amortized_cost(system)
            assert fast.total == oracle.total

    def test_evaluate_study_covers_every_portfolio(self, engine):
        study = build_ocme(OCMEConfig(), mcm())
        costs = engine.evaluate_study(study)
        assert set(costs) == {
            "soc", "mcm", "mcm_package_reused", "mcm_heterogeneous"
        }


class TestVolumeSweep:
    """Closed-form volume scaling vs a study rebuilt per point."""

    def test_bit_parity_with_rebuilt_oracle(self, engine):
        base = SCMSConfig()
        study = build_scms(base, mcm())
        for scale in (0.25, 1.0, 2.0, 7.3):
            rebuilt = build_scms(
                SCMSConfig(quantity=base.quantity * scale), mcm()
            )
            fast = engine.evaluate(study.chiplet, volume_scale=scale)
            naive = [
                rebuilt.chiplet.amortized_cost(system).total
                for system in rebuilt.chiplet.systems
            ]
            assert list(fast.totals()) == naive
            assert fast.average == rebuilt.chiplet.average_cost()

    def test_sweep_points(self, engine):
        study = build_fsmc(FSMCConfig(n_chiplets=2, k_sockets=2), mcm())
        sweep = engine.volume_sweep(
            "volumes", study.multichip, (0.5, 1.0, 2.0)
        )
        assert [point.x for point in sweep.points] == [0.5, 1.0, 2.0]
        # Higher volume amortizes NRE further: average falls.
        averages = [point.value.average for point in sweep.points]
        assert averages[0] > averages[1] > averages[2]
        # RE does not depend on volume.
        for point in sweep.points:
            assert point.value.costs[0].re.total == (
                sweep.points[0].value.costs[0].re.total
            )

    def test_invalid_scale_rejected(self, engine):
        study = build_fsmc(FSMCConfig(n_chiplets=2, k_sockets=2), mcm())
        with pytest.raises(InvalidParameterError):
            engine.evaluate(study.multichip, volume_scale=0.0)
        with pytest.raises(InvalidParameterError):
            engine.volume_sweep("empty", study.multichip, ())


class TestEdgeCases:
    def test_single_system_portfolio(self, engine, simple_soc):
        portfolio = Portfolio([simple_soc])
        _assert_bit_identical(engine, portfolio)

    def test_chip_shared_across_all_systems(self, engine, simple_chiplet, mcm_tech):
        systems = [
            multichip(
                f"s{i}", [simple_chiplet] * (i + 1), mcm_tech, quantity=1000.0
            )
            for i in range(4)
        ]
        portfolio = Portfolio(systems)
        _assert_bit_identical(engine, portfolio)
        # One shared chip design: every system bears the same chip share.
        shares = {
            engine.amortized_cost(portfolio, system).amortized_nre.chips
            for system in systems
        }
        assert len(shares) == 1

    def test_fsmc_more_sockets_than_chiplets(self, engine):
        study = build_fsmc(FSMCConfig(n_chiplets=2, k_sockets=4), mcm())
        assert study.system_count == 2 + 3 + 4 + 5
        for portfolio in PortfolioEngine.study_portfolios(study).values():
            _assert_bit_identical(engine, portfolio)

    def test_non_member_rejected(self, engine, simple_chiplet, mcm_tech):
        member = multichip("m", [simple_chiplet], mcm_tech, quantity=1.0)
        outsider = multichip("o", [simple_chiplet], mcm_tech, quantity=1.0)
        portfolio = Portfolio([member])
        with pytest.raises(InvalidParameterError):
            engine.amortized_cost(portfolio, outsider)
        with pytest.raises(InvalidParameterError):
            engine.evaluate(portfolio).cost("outsider")
        with pytest.raises(InvalidParameterError):
            portfolio.system_design_keys(outsider)

    def test_study_portfolios_rejects_non_study(self):
        with pytest.raises(InvalidParameterError):
            PortfolioEngine.study_portfolios(object())


class TestCaching:
    def test_decomposition_memoized(self, engine):
        study = build_scms(SCMSConfig(), mcm())
        first = engine.decompose(study.chiplet)
        assert engine.decompose(study.chiplet) is first
        engine.clear_caches()
        assert engine.decompose(study.chiplet) is not first

    def test_costs_lookup_by_name_and_object(self, engine):
        study = build_scms(SCMSConfig(), mcm())
        costs = engine.evaluate(study.chiplet)
        system = study.chiplet.systems[1]
        assert costs.cost(system) is costs.cost(system.name)

    def test_default_engine_singleton(self):
        assert default_portfolio_engine() is default_portfolio_engine()
