"""Batched cost-evaluation engine: cache correctness, parity, batch API.

The engine's contract is that every fast path is *numerically
indistinguishable* from the naive path it replaces.  These tests hold
the memoized die costs, the CostEngine evaluation, the closed-form
partition sweeps and the closed-form Monte Carlo bit-equal (well inside
the 1e-9 acceptance tolerance) to the object-building oracles across
SoC, MCM, InFO, 2.5D, 3D and package-reuse systems, and verify that
perturbed nodes never produce stale cache hits.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.core.chip import Chip
from repro.core.module import Module
from repro.core.package_design import PackageDesign
from repro.core.re_cost import compute_re_cost
from repro.core.system import System, multichip
from repro.core.total import compute_total_cost
from repro.d2d.overhead import FractionOverhead
from repro.engine import (
    CostEngine,
    cached_die_cost,
    clear_die_cost_cache,
    default_engine,
    die_cost_cache_info,
    linearize_packaging,
    no_cache,
    partition_re_cost,
    sample_re_costs,
    soc_re_cost,
)
from repro.errors import InvalidParameterError
from repro.explore.montecarlo import (
    CostDistribution,
    monte_carlo_cost,
    monte_carlo_cost_naive,
)
from repro.explore.partition import (
    partition_cost_sweep,
    partition_monolith,
    soc_reference,
)
from repro.explore.sensitivity import system_tornado, tornado
from repro.explore.sweep import run_sweep
from repro.packaging.info import info
from repro.packaging.interposer import interposer_25d
from repro.packaging.mcm import mcm
from repro.packaging.stacked3d import stacked_3d
from repro.process.catalog import get_node
from repro.wafer.die import DieSpec, die_cost


def _reuse_system() -> System:
    """Two equal chiplets in a shared (reused) package design."""
    n7 = get_node("7nm")
    tech = mcm()
    d2d = FractionOverhead(0.10)
    a = Chip.of("reuse-a", (Module("ma", 150.0, n7),), n7, d2d=d2d)
    b = Chip.of("reuse-b", (Module("mb", 120.0, n7),), n7, d2d=d2d)
    design = PackageDesign.for_chips("shared-pkg", tech, (a.area, b.area))
    return System(
        name="reuse-sys",
        chips=(a, b),
        integration=tech,
        quantity=1e6,
        package=design,
    )


def _systems() -> list[System]:
    n5 = get_node("5nm")
    n7 = get_node("7nm")
    return [
        soc_reference(400.0, n5),
        partition_monolith(800.0, n5, 3, mcm()),
        partition_monolith(800.0, n5, 4, info()),
        partition_monolith(600.0, n7, 2, interposer_25d()),
        partition_monolith(600.0, n5, 3, stacked_3d()),
        _reuse_system(),
    ]


def _assert_re_equal(a, b):
    assert a.raw_chips == b.raw_chips
    assert a.chip_defects == b.chip_defects
    assert a.raw_package == b.raw_package
    assert a.package_defects == b.package_defects
    assert a.wasted_kgd == b.wasted_kgd
    assert a.chip_details == b.chip_details


class TestDieCache:
    def test_matches_direct_call(self, n5):
        spec = DieSpec(area=333.0, node=n5)
        assert cached_die_cost(spec) == die_cost(spec)

    def test_hits_are_counted(self, n5):
        clear_die_cost_cache()
        spec = DieSpec(area=212.0, node=n5)
        cached_die_cost(spec)
        before = die_cost_cache_info().hits
        cached_die_cost(DieSpec(area=212.0, node=n5))
        assert die_cost_cache_info().hits == before + 1

    def test_perturbed_node_never_hits_stale_entry(self, n5):
        clear_die_cost_cache()
        nominal = cached_die_cost(DieSpec(area=300.0, node=n5))
        perturbed_node = n5.with_defect_density(n5.defect_density * 1.5)
        perturbed = cached_die_cost(DieSpec(area=300.0, node=perturbed_node))
        assert perturbed.die_yield < nominal.die_yield
        assert perturbed.total > nominal.total
        # Alternating lookups keep returning the right entry.
        assert cached_die_cost(DieSpec(area=300.0, node=n5)) == nominal
        assert (
            cached_die_cost(DieSpec(area=300.0, node=perturbed_node)) == perturbed
        )

    def test_no_cache_bypasses(self, n5):
        clear_die_cost_cache()
        spec = DieSpec(area=123.0, node=n5)
        with no_cache():
            cached_die_cost(spec)
        assert die_cost_cache_info().currsize == 0


class TestEngineParity:
    @pytest.mark.parametrize("index", range(6))
    def test_evaluate_re_matches_naive(self, index):
        system = _systems()[index]
        engine = CostEngine()
        naive = compute_re_cost(system)
        # Twice: the first evaluation prices packaging directly, the
        # second through the cached affine decomposition.
        _assert_re_equal(engine.evaluate_re(system), naive)
        _assert_re_equal(engine.evaluate_re(system), naive)

    def test_evaluate_total_matches_naive(self):
        engine = CostEngine()
        for system in _systems():
            a = engine.evaluate_total(system)
            b = compute_total_cost(system)
            assert a.total == b.total
            assert a.amortized_nre == b.amortized_nre

    def test_evaluate_many_serial_and_threaded(self):
        systems = _systems()
        engine = CostEngine()
        serial = [cost.total for cost in engine.evaluate_many(systems)]
        threaded = [
            cost.total
            for cost in engine.evaluate_many(systems, workers=2, backend="thread")
        ]
        assert serial == threaded
        assert serial == [compute_re_cost(system).total for system in systems]

    def test_threaded_pool_uses_calling_engine(self, n5):
        """Thread workers share the process: the calling engine's hot
        caches (and any subclass override) must stay in play."""
        engine = CostEngine()
        engine.clear_caches()
        systems = [soc_reference(area, n5) for area in (100.0, 200.0, 300.0)]
        engine.evaluate_many(systems, workers=2, backend="thread")
        assert engine.cache_info()["die_hot_entries"] == 3

    def test_evaluate_many_process_pool(self):
        systems = _systems()[:3]
        engine = CostEngine(workers=2, backend="process")
        totals = [cost.total for cost in engine.evaluate_many(systems)]
        assert totals == [compute_re_cost(system).total for system in systems]

    def test_invalid_workers_and_backend(self):
        with pytest.raises(InvalidParameterError):
            CostEngine(workers=0)
        with pytest.raises(InvalidParameterError):
            CostEngine(backend="fiber")
        with pytest.raises(InvalidParameterError):
            CostEngine().evaluate_many(_systems()[:1], backend="fiber")

    def test_cache_info_and_clear(self, n5):
        engine = CostEngine()
        engine.clear_caches()
        engine.evaluate_re(soc_reference(256.0, n5))
        info_before = engine.cache_info()
        assert info_before["die_hot_entries"] == 1
        engine.clear_caches()
        assert engine.cache_info()["die_hot_entries"] == 0


class TestPackagingAffine:
    def test_linearization_matches_direct(self):
        for system in _systems():
            packager = system.package or system.integration
            areas = system.chip_areas
            affine = linearize_packaging(
                lambda kgd: packager.packaging_cost(areas, kgd)
            )
            assert affine is not None
            for kgd in (0.0, 17.5, 1234.0):
                direct = packager.packaging_cost(areas, kgd)
                fitted = affine.packaging_cost(kgd)
                assert fitted.raw_package == direct.raw_package
                assert fitted.package_defects == direct.package_defects
                assert fitted.wasted_kgd == direct.wasted_kgd

    def test_nonlinear_function_is_rejected(self):
        from repro.packaging.base import PackagingCost

        def quadratic(kgd: float) -> PackagingCost:
            return PackagingCost(
                raw_package=1.0, package_defects=1.0, wasted_kgd=kgd * kgd
            )

        assert linearize_packaging(quadratic) is None


class TestFastMonteCarlo:
    @pytest.mark.parametrize("index", range(6))
    def test_fast_matches_naive_oracle(self, index):
        system = _systems()[index]
        fast = monte_carlo_cost(system, draws=40, sigma=0.2, seed=11, method="fast")
        naive = monte_carlo_cost_naive(system, draws=40, sigma=0.2, seed=11)
        assert fast.samples == naive.samples

    def test_auto_dispatch_matches_naive(self, n5):
        system = soc_reference(500.0, n5)
        auto = monte_carlo_cost(system, draws=30, seed=5)
        naive = monte_carlo_cost(system, draws=30, seed=5, method="naive")
        assert auto.samples == naive.samples

    def test_sample_re_costs_plan_reuse(self, n5):
        system = partition_monolith(640.0, n5, 2, mcm())
        assert sample_re_costs(system, draws=10, seed=2) == list(
            monte_carlo_cost_naive(system, draws=10, seed=2).samples
        )

    def test_no_stale_hits_across_draws(self, n5):
        """Monte-Carlo node churn must not corrupt nominal pricing."""
        system = partition_monolith(700.0, n5, 2, mcm())
        nominal_before = compute_re_cost(system).total
        monte_carlo_cost(system, draws=50, sigma=0.3, seed=9)
        assert compute_re_cost(system).total == nominal_before

    def test_custom_metric_uses_naive_path(self, n5):
        system = soc_reference(300.0, n5)
        seen = []

        def metric(s: System) -> float:
            seen.append(s)
            return compute_re_cost(s).total

        result = monte_carlo_cost(system, draws=5, seed=1, metric=metric)
        assert len(seen) == 5
        assert result.samples == monte_carlo_cost(
            system, draws=5, seed=1, method="fast"
        ).samples

    def test_fast_method_rejects_metric(self, n5):
        with pytest.raises(InvalidParameterError):
            monte_carlo_cost(
                soc_reference(300.0, n5),
                draws=5,
                metric=lambda s: 1.0,
                method="fast",
            )

    def test_invalid_method_and_draws(self, n5):
        system = soc_reference(300.0, n5)
        with pytest.raises(InvalidParameterError):
            monte_carlo_cost(system, method="warp")
        with pytest.raises(InvalidParameterError):
            monte_carlo_cost(system, draws=0)
        with pytest.raises(InvalidParameterError):
            monte_carlo_cost(system, draws=0, method="naive")


class TestFastPartitionSweep:
    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8])
    def test_partition_re_cost_matches_built_system(self, count, n7):
        for tech in (mcm(), info(), interposer_25d()):
            built = compute_re_cost(partition_monolith(750.0, n7, count, tech))
            closed = partition_re_cost(750.0, n7, count, tech)
            _assert_re_equal(closed, built)

    def test_soc_re_cost_matches_built_system(self, n5):
        built = compute_re_cost(soc_reference(420.0, n5))
        _assert_re_equal(soc_re_cost(420.0, n5), built)

    def test_partition_re_cost_validation(self, n7):
        with pytest.raises(InvalidParameterError):
            partition_re_cost(750.0, n7, 0, mcm())
        with pytest.raises(InvalidParameterError):
            partition_re_cost(-1.0, n7, 2, mcm())
        with pytest.raises(InvalidParameterError):
            soc_re_cost(0.0, n7)

    def test_partition_sweep_rejects_nonpositive_counts(self, n5):
        """Counts < 1 must raise like partition_monolith, not silently
        price the SoC reference."""
        with pytest.raises(InvalidParameterError):
            partition_cost_sweep(500.0, n5, [0, 1, 2], mcm())
        with pytest.raises(InvalidParameterError):
            partition_cost_sweep(500.0, n5, [-2], mcm())

    def test_partition_cost_sweep_counts_and_soc_anchor(self, n5):
        sweep = partition_cost_sweep(800.0, n5, [1, 2, 3, 4], mcm())
        assert sweep.xs() == [1, 2, 3, 4]
        soc_total = compute_re_cost(soc_reference(800.0, n5)).total
        assert sweep.points[0].value.total == soc_total
        for point, count in zip(sweep.points[1:], [2, 3, 4]):
            built = compute_re_cost(partition_monolith(800.0, n5, count, mcm()))
            assert point.value.total == built.total

    def test_partition_grid_matches_built_systems(self, n7):
        engine = CostEngine()
        areas = [300.0, 500.0]
        counts = [1, 2, 4]
        grid = engine.partition_grid("g", areas, counts, n7, mcm())
        assert grid.rows == (300.0, 500.0)
        assert grid.cols == (1, 2, 4)
        for area in areas:
            for count in counts:
                built = compute_re_cost(partition_monolith(area, n7, count, mcm()))
                assert grid.value(area, count).total == built.total
        row = grid.row_sweep(300.0)
        assert row.xs() == [1, 2, 4]

    def test_grid_errors(self, n7):
        engine = CostEngine()
        with pytest.raises(InvalidParameterError):
            engine.partition_grid("g", [], [1], n7, mcm())
        grid = engine.partition_grid("g", [300.0], [2], n7, mcm())
        with pytest.raises(InvalidParameterError):
            grid.value(999.0, 2)
        with pytest.raises(InvalidParameterError):
            grid.row_sweep(999.0)


class TestCostDistribution:
    def test_statistics_match_manual_computation(self):
        samples = (5.0, 1.0, 3.0, 2.0, 4.0)
        dist = CostDistribution(samples=samples)
        assert dist.mean == pytest.approx(3.0)
        assert dist.std == pytest.approx((2.0) ** 0.5)
        assert dist.quantile(0.0) == 1.0
        assert dist.quantile(1.0) == 5.0
        assert dist.quantile(0.5) == 3.0

    def test_derived_statistics_are_memoized(self):
        dist = CostDistribution(samples=(3.0, 1.0, 2.0))
        dist.quantile(0.5)
        first = dist.__dict__["_sorted_samples"]
        dist.quantile(0.9)
        assert dist.__dict__["_sorted_samples"] is first
        assert dist.mean == dist.mean
        assert "mean" in dist.__dict__
        dist.std
        assert "std" in dist.__dict__

    def test_invalid_quantile(self):
        with pytest.raises(InvalidParameterError):
            CostDistribution(samples=(1.0,)).quantile(-0.1)


class TestBatchFrontends:
    def test_run_sweep_matches_manual_loop(self, n5):
        values = [200.0, 400.0, 600.0]
        sweep = run_sweep(
            "re-vs-area",
            values,
            lambda area: soc_reference(area, n5),
            lambda system: compute_re_cost(system).total,
        )
        assert sweep.xs() == values
        assert sweep.values() == [
            compute_re_cost(soc_reference(area, n5)).total for area in values
        ]

    def test_run_sweep_empty_values_rejected(self, n5):
        with pytest.raises(InvalidParameterError):
            run_sweep("empty", [], lambda a: soc_reference(a, n5), lambda s: 0.0)

    def test_engine_sweep_default_evaluator_is_re_cost(self, n5):
        engine = CostEngine()
        sweep = engine.sweep("re", [256.0], lambda area: soc_reference(area, n5))
        assert sweep.points[0].value.total == compute_re_cost(
            soc_reference(256.0, n5)
        ).total

    def test_system_tornado_matches_callback_tornado(self, n5):
        def build(parameter: str, scale: float) -> System:
            d2d = 0.10 * scale if parameter == "d2d" else 0.10
            density = scale if parameter == "defect_density" else 1.0
            node = n5.with_defect_density(n5.defect_density * density)
            return partition_monolith(800.0, node, 2, mcm(), d2d_fraction=d2d)

        def evaluate(parameter: str, scale: float) -> float:
            return compute_re_cost(build(parameter, scale)).total

        fast = system_tornado(["d2d", "defect_density"], build, step=0.2)
        oracle = tornado(["d2d", "defect_density"], evaluate, step=0.2)
        assert [r.parameter for r in fast] == [r.parameter for r in oracle]
        for a, b in zip(fast, oracle):
            assert a.base == b.base
            assert a.low == b.low
            assert a.high == b.high

    def test_system_tornado_validation(self, n5):
        build = lambda p, s: soc_reference(100.0, n5)  # noqa: E731
        with pytest.raises(InvalidParameterError):
            system_tornado([], build)
        with pytest.raises(InvalidParameterError):
            system_tornado(["x"], build, step=1.5)

    def test_default_engine_is_shared(self):
        assert default_engine() is default_engine()


class TestBenchSmoke:
    def test_perf_bench_smoke_mode(self):
        """The perf bench's quick smoke mode runs green end to end."""
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        bench = os.path.join(repo, "benchmarks", "bench_perf_engine.py")
        env = dict(os.environ)
        src = os.path.join(repo, "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, bench, "--smoke"],
            capture_output=True,
            text=True,
            env=env,
            cwd=repo,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "engine perf bench (smoke)" in result.stdout
