"""Serial-flow composite yield (Eq. 2)."""

import pytest

from repro.errors import InvalidParameterError
from repro.yieldmodel.composite import SerialYield, overall_yield


def test_overall_is_product():
    flow = SerialYield({"wafer": 0.99, "die": 0.72, "packaging": 0.99, "test": 0.995})
    assert flow.overall == pytest.approx(0.99 * 0.72 * 0.99 * 0.995)


def test_empty_flow_is_perfect():
    assert SerialYield({}).overall == 1.0


def test_overall_yield_helper_matches_eq2():
    assert overall_yield(0.99, 0.72, 0.99, 0.995) == pytest.approx(
        0.99 * 0.72 * 0.99 * 0.995
    )


def test_overall_yield_defaults_to_one():
    assert overall_yield() == 1.0


def test_with_stage_adds_stage():
    flow = SerialYield({"die": 0.8}).with_stage("test", 0.9)
    assert flow.overall == pytest.approx(0.72)


def test_with_stage_replaces_stage():
    flow = SerialYield({"die": 0.8}).with_stage("die", 0.9)
    assert flow.overall == pytest.approx(0.9)


def test_with_stage_does_not_mutate():
    flow = SerialYield({"die": 0.8})
    flow.with_stage("test", 0.9)
    assert "test" not in flow.stages


def test_invalid_stage_yield_rejected():
    with pytest.raises(InvalidParameterError):
        SerialYield({"die": 0.0})
    with pytest.raises(InvalidParameterError):
        SerialYield({"die": 1.1})
    with pytest.raises(InvalidParameterError):
        SerialYield({"die": 0.9}).with_stage("x", -0.5)


def test_loss_share_partition():
    flow = SerialYield({"die": 0.7, "packaging": 0.9})
    assert flow.loss_share("die") == pytest.approx(0.3 / 0.4)
    assert flow.loss_share("packaging") == pytest.approx(0.1 / 0.4)
    total = flow.loss_share("die") + flow.loss_share("packaging")
    assert total == pytest.approx(1.0)


def test_loss_share_perfect_flow_is_zero():
    flow = SerialYield({"die": 1.0, "test": 1.0})
    assert flow.loss_share("die") == 0.0


def test_loss_share_unknown_stage_raises():
    with pytest.raises(KeyError):
        SerialYield({"die": 0.9}).loss_share("unknown")
