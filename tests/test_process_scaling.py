"""Area scaling between nodes."""

import pytest

from repro.errors import InvalidParameterError
from repro.process.catalog import get_node
from repro.process.scaling import area_scale_factor, scale_area


class TestAreaScaleFactor:
    def test_same_node_is_identity(self):
        n7 = get_node("7nm")
        assert area_scale_factor(n7, n7) == 1.0
        assert area_scale_factor(n7, n7, scalable_fraction=0.3) == 1.0

    def test_full_scaling_uses_density_ratio(self):
        n14, n7 = get_node("14nm"), get_node("7nm")
        expected = n14.transistor_density / n7.transistor_density
        assert area_scale_factor(n14, n7) == pytest.approx(expected)

    def test_unscalable_module_keeps_area(self):
        n14, n7 = get_node("14nm"), get_node("7nm")
        assert area_scale_factor(n14, n7, scalable_fraction=0.0) == 1.0

    def test_partial_scaling_interpolates(self):
        n14, n7 = get_node("14nm"), get_node("7nm")
        full = area_scale_factor(n14, n7, 1.0)
        half = area_scale_factor(n14, n7, 0.5)
        assert half == pytest.approx(0.5 * full + 0.5)

    def test_advanced_to_mature_grows_area(self):
        n7, n14 = get_node("7nm"), get_node("14nm")
        assert area_scale_factor(n7, n14) > 1.0

    def test_round_trip_is_identity_for_full_scaling(self):
        n14, n7 = get_node("14nm"), get_node("7nm")
        assert area_scale_factor(n14, n7) * area_scale_factor(
            n7, n14
        ) == pytest.approx(1.0)

    def test_fraction_out_of_range_rejected(self):
        n14, n7 = get_node("14nm"), get_node("7nm")
        with pytest.raises(InvalidParameterError):
            area_scale_factor(n14, n7, scalable_fraction=1.5)
        with pytest.raises(InvalidParameterError):
            area_scale_factor(n14, n7, scalable_fraction=-0.1)

    def test_packaging_node_rejected_for_scaling(self):
        rdl, n7 = get_node("rdl"), get_node("7nm")
        with pytest.raises(InvalidParameterError):
            area_scale_factor(rdl, n7)

    def test_packaging_node_allowed_when_unscalable(self):
        rdl, n7 = get_node("rdl"), get_node("7nm")
        assert area_scale_factor(rdl, n7, scalable_fraction=0.0) == 1.0


class TestScaleArea:
    def test_scales_area(self):
        n14, n7 = get_node("14nm"), get_node("7nm")
        scaled = scale_area(100.0, n14, n7)
        assert scaled == pytest.approx(
            100.0 * n14.transistor_density / n7.transistor_density
        )

    def test_zero_area_stays_zero(self):
        n14, n7 = get_node("14nm"), get_node("7nm")
        assert scale_area(0.0, n14, n7) == 0.0

    def test_negative_area_rejected(self):
        n14, n7 = get_node("14nm"), get_node("7nm")
        with pytest.raises(InvalidParameterError):
            scale_area(-1.0, n14, n7)
