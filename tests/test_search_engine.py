"""The design-space search (`repro.search`): candidate enumeration,
spec validation and serialization, and — the load-bearing guarantee —
bit-parity of the vectorized `run_search` against the naive
one-System-per-candidate oracle, on every code path (die-cost override,
test cost, k objectives, no-SoC, no-numpy scalar fallback)."""

import json

import pytest

import repro.search.engine as engine_module
import repro.search.evaluate as evaluate_module
import repro.search.frontier as frontier_module
from repro.config import ConfigRegistries
from repro.errors import ConfigError
from repro.search import (
    DesignSpace,
    candidate_rows,
    oracle_candidate,
    run_search,
    run_search_oracle,
    space_from_dict,
    space_to_dict,
)


def _space(**overrides):
    base = dict(
        module_areas=(300.0, 600.0),
        nodes=("7nm", "14nm"),
        technologies=("mcm", "2.5d"),
        chiplet_counts=(2, 3),
        d2d_fractions=(0.10,),
        quantity=500_000.0,
        top_k=5,
    )
    base.update(overrides)
    return DesignSpace(**base)


class TestDesignSpaceValidation:
    @pytest.mark.parametrize("overrides, fragment", [
        (dict(module_areas=()), "module_areas"),
        (dict(module_areas=(300.0, -1.0)), "must be > 0"),
        (dict(nodes=()), "nodes"),
        (dict(technologies=(), include_soc=False), "empty"),
        (dict(chiplet_counts=()), "chiplet_counts"),
        (dict(chiplet_counts=(2, 0)), ">= 1"),
        (dict(chiplet_counts=(2.5,)), ">= 1"),
        (dict(d2d_fractions=()), "d2d_fractions"),
        (dict(d2d_fractions=(1.0,)), "[0, 1)"),
        (dict(quantity=0.0), "quantity"),
        (dict(objectives=()), "objectives"),
        (dict(objectives=("total", "total")), "duplicate"),
        (dict(objectives=("total", "test_cost")), "test_cost"),
        (dict(top_k=-1), "top_k"),
        (dict(batch_size=0), "batch_size"),
    ])
    def test_rejected(self, overrides, fragment):
        with pytest.raises(ConfigError, match="design space"):
            _space(**overrides)
        with pytest.raises(ConfigError) as excinfo:
            _space(**overrides)
        assert fragment in str(excinfo.value).replace("'", "")

    def test_unknown_objective_lists_available(self):
        with pytest.raises(ConfigError) as excinfo:
            _space(objectives=("total", "speed"))
        message = str(excinfo.value)
        assert "unknown objective 'speed'" in message
        assert "footprint" in message and "silicon_area" in message

    def test_unknown_test_cost_parameter_lists_available(self):
        with pytest.raises(ConfigError) as excinfo:
            _space(test_cost={"laser_power": 9000.0})
        message = str(excinfo.value)
        assert "laser_power" in message
        assert "tester_cost_per_hour" in message

    def test_bad_test_cost_value(self):
        with pytest.raises(ConfigError, match="test_cost"):
            _space(test_cost={"tester_cost_per_hour": -1.0})

    def test_soc_only_space_is_legal(self):
        space = _space(technologies=(), chiplet_counts=())
        assert space.n_candidates == space.n_soc_candidates == 4


class TestCandidateEnumeration:
    def test_counts(self):
        space = _space()
        # 2 nodes x 2 areas SoC + 2 techs x 2 counts x 1 frac x 2 x 2
        assert space.n_soc_candidates == 4
        assert space.n_candidates == 4 + 16

    def test_axes_round_trips_group_enumeration(self):
        space = _space()
        index = 0
        for group in space.groups():
            assert group.base_index == index
            for area in space.module_areas:
                axes = space.axes(index)
                assert axes.index == index
                assert axes.scheme == group.scheme
                assert axes.technology == group.technology
                assert axes.chiplets == group.chiplets
                assert axes.d2d_fraction == group.d2d_fraction
                assert axes.node == group.node
                assert axes.module_area == area
                index += 1
        assert index == space.n_candidates

    def test_no_soc_enumeration_starts_at_partitions(self):
        space = _space(include_soc=False)
        assert space.n_soc_candidates == 0
        assert space.axes(0).scheme == "mcm"

    @pytest.mark.parametrize("index", [-1, 20])
    def test_out_of_range_index(self, index):
        with pytest.raises(ConfigError, match="out of range"):
            _space().axes(index)

    def test_metrics_include_test_cost_only_with_model(self):
        assert "test_cost" not in _space().metrics
        assert "test_cost" in _space(test_cost={}).metrics


class TestSerialization:
    def test_json_round_trip(self):
        space = _space(test_cost={"tester_cost_per_hour": 500.0},
                       objectives=("re", "test_cost"))
        payload = json.loads(json.dumps(space_to_dict(space)))
        assert space_from_dict(payload) == space

    def test_unknown_keys_rejected(self):
        payload = space_to_dict(_space())
        payload["warp_factor"] = 9
        with pytest.raises(ConfigError, match="unknown keys"):
            space_from_dict(payload)

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigError, match="mapping"):
            space_from_dict([1, 2, 3])


def _assert_same_result(fast, slow):
    assert fast.n_candidates == slow.n_candidates
    assert fast.objectives == slow.objectives
    assert fast.frontier == slow.frontier  # bit-identical metric floats
    assert fast.top == slow.top


class TestParityWithOracle:
    """run_search must be bit-identical to the one-System-per-candidate
    oracle — same floats, set-identical frontier, same top-k."""

    def test_default_space(self):
        space = _space()
        _assert_same_result(run_search(space), run_search_oracle(space))

    def test_die_cost_override(self):
        space = _space()
        override = ConfigRegistries().die_cost_fn(
            "murphy", "450mm", context="test"
        )
        _assert_same_result(
            run_search(space, die_cost_fn=override),
            run_search_oracle(space, die_cost_fn=override),
        )

    def test_with_test_cost_objective(self):
        space = _space(test_cost={"tester_cost_per_hour": 500.0},
                       objectives=("test_cost", "total"))
        fast = run_search(space)
        _assert_same_result(fast, run_search_oracle(space))
        assert all(c.test_cost is not None for c in fast.frontier)

    def test_three_objectives(self):
        space = _space(objectives=("re", "nre", "footprint"))
        _assert_same_result(run_search(space), run_search_oracle(space))

    def test_without_soc(self):
        space = _space(include_soc=False)
        _assert_same_result(run_search(space), run_search_oracle(space))

    def test_batch_size_does_not_change_results(self):
        space = _space()
        reference = run_search(space)
        for batch_size in (1, 3, 7):
            _assert_same_result(
                run_search(_space(batch_size=batch_size)), reference
            )

    @pytest.mark.skipif(frontier_module._np is None, reason="needs numpy")
    def test_scalar_fallback_matches_numpy(self, monkeypatch):
        space = _space()
        vectorized = run_search(space)
        for module in (frontier_module, evaluate_module, engine_module):
            monkeypatch.setattr(module, "_np", None)
        _assert_same_result(run_search(space), vectorized)

    def test_unknown_node_names_search_context(self):
        with pytest.raises(ConfigError, match="my search"):
            run_search(_space(nodes=("7nm", "nope")), context="my search")

    def test_single_candidate_spot_check(self):
        space = _space()
        result = run_search(space)
        probe = result.frontier[0]
        assert oracle_candidate(space, probe.index) == probe


class TestSearchResult:
    def test_frontier_in_index_order_and_non_dominated(self):
        result = run_search(_space())
        indices = result.frontier_indices()
        assert list(indices) == sorted(indices)
        vectors = [c.objective_vector(result.objectives)
                   for c in result.frontier]
        for mine in vectors:
            assert not any(
                all(x <= y for x, y in zip(other, mine))
                and any(x < y for x, y in zip(other, mine))
                for other in vectors
            )

    def test_top_is_cost_sorted_and_bounded(self):
        space = _space(top_k=3)
        result = run_search(space)
        totals = [candidate.total for candidate in result.top]
        assert len(result.top) == 3
        assert totals == sorted(totals)
        oracle = run_search_oracle(space)
        assert result.top == oracle.top

    def test_top_k_zero_disables_top(self):
        assert run_search(_space(top_k=0)).top == ()

    def test_labels(self):
        result = run_search(_space())
        labels = {candidate.label for candidate in result.frontier}
        assert any(label.startswith("soc x1 ") for label in labels)
        assert all("@" in label for label in labels)

    def test_objective_on_missing_metric(self):
        candidate = run_search(_space()).frontier[0]
        assert candidate.test_cost is None
        with pytest.raises(ValueError, match="test_cost"):
            candidate.objective("test_cost")


class TestCandidateRows:
    def test_schema_and_set_tags(self):
        result = run_search(_space(top_k=4))
        rows = candidate_rows(result)
        assert len(rows) == len(result.frontier) + 4
        expected = {"set", "rank", "index", "scheme", "node", "chiplets",
                    "d2d_fraction", "module_area", "re", "nre", "total",
                    "silicon_area", "footprint"}
        for row in rows:
            assert set(row) == expected
        frontier_rows = [row for row in rows if row["set"] == "frontier"]
        top_rows = [row for row in rows if row["set"] == "top"]
        assert [row["rank"] for row in frontier_rows] == list(
            range(len(result.frontier))
        )
        assert [row["index"] for row in top_rows] == [
            candidate.index for candidate in result.top
        ]
        json.dumps(rows)  # sink rows must be JSON-serializable

    def test_test_cost_column_present_when_enabled(self):
        result = run_search(_space(test_cost={}))
        assert all(
            "test_cost" in row for row in candidate_rows(result)
        )
