"""Monte-Carlo yield-parameter sampling."""

import random

import pytest

from repro.errors import InvalidParameterError
from repro.yieldmodel.sampling import DefectDensityPrior, sample_yields


def test_sampling_is_deterministic_given_seed():
    prior = DefectDensityPrior(mode=0.09)
    a = sample_yields(prior, 10.0, 500.0, draws=50, seed=7)
    b = sample_yields(prior, 10.0, 500.0, draws=50, seed=7)
    assert a == b


def test_different_seeds_differ():
    prior = DefectDensityPrior(mode=0.09)
    a = sample_yields(prior, 10.0, 500.0, draws=50, seed=1)
    b = sample_yields(prior, 10.0, 500.0, draws=50, seed=2)
    assert a != b


def test_yields_in_unit_interval():
    prior = DefectDensityPrior(mode=0.11, sigma=0.4)
    for value in sample_yields(prior, 10.0, 800.0, draws=200, seed=3):
        assert 0.0 < value <= 1.0


def test_zero_sigma_is_point_mass():
    prior = DefectDensityPrior(mode=0.09, sigma=0.0)
    values = sample_yields(prior, 10.0, 500.0, draws=10, seed=0)
    assert len(set(values)) == 1


def test_bounds_are_respected():
    prior = DefectDensityPrior(mode=0.09, sigma=1.0, lower=0.08, upper=0.10)
    rng = random.Random(0)
    for _ in range(200):
        assert 0.08 <= prior.sample(rng) <= 0.10


def test_invalid_bounds_rejected():
    with pytest.raises(InvalidParameterError):
        DefectDensityPrior(mode=0.09, lower=0.2, upper=0.1)


def test_negative_mode_rejected():
    with pytest.raises(InvalidParameterError):
        DefectDensityPrior(mode=-0.1)


def test_zero_draws_rejected():
    with pytest.raises(InvalidParameterError):
        sample_yields(DefectDensityPrior(0.09), 10.0, 500.0, draws=0)
