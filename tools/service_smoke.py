#!/usr/bin/env python
"""End-to-end smoke proof for the HTTP cost service (CI-executed).

The service contract under test (docs/SERVICE.md):

1. ``python -m repro serve`` boots a real server process and reports
   its bound address;
2. ``GET /healthz`` answers with the live registry hash;
3. a ``POST /v1/cost`` response, re-rendered through the shared cost
   table, is **byte-identical** to ``python -m repro cost`` stdout for
   the same design point — with and without registry-named die-pricing
   overrides;
4. an identical repeat request is served from the response cache;
5. ``POST /v1/scenario`` matches ``python -m repro run`` for the same
   document, and the streaming variant delivers the same studies;
6. the server shuts down cleanly on SIGINT.

Run from the repo root: ``PYTHONPATH=src python tools/service_smoke.py``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

COST_ARGS = [
    "cost", "--area", "640", "--node", "5nm", "--integration", "2.5d",
    "--chiplets", "4", "--quantity", "1000000",
]
COST_BODY = {
    "area": 640.0, "node": "5nm", "integration": "2.5d",
    "chiplets": 4, "quantity": 1_000_000.0,
}
OVERRIDE_ARGS = COST_ARGS + [
    "--yield-model", "poisson", "--wafer-geometry", "450mm",
]
OVERRIDE_BODY = dict(COST_BODY, yield_model="poisson",
                     wafer_geometry="450mm")

SCENARIO = {
    "name": "service-smoke",
    "description": "granularity sweep for the HTTP parity proof",
    "studies": [
        {
            "kind": "partition_sweep",
            "name": "granularity",
            "module_area": 400,
            "node": "7nm",
            "technology": "mcm",
            "chiplet_counts": [1, 2, 3],
        }
    ],
}

CHECKS: list[str] = []


def check(condition: bool, label: str) -> None:
    CHECKS.append(("ok  " if condition else "FAIL") + " " + label)
    print(CHECKS[-1], flush=True)
    if not condition:
        print("\n".join(CHECKS))
        sys.exit(1)


def run_cli(arguments: list[str]) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
        timeout=300, check=True,
    )
    return completed.stdout


def start_server() -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 60
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline().strip()
        if line:
            break
        if process.poll() is not None:
            raise RuntimeError("server exited before binding")
    if not line.startswith("serving on "):
        process.kill()
        raise RuntimeError(f"unexpected server banner: {line!r}")
    return process, line.removeprefix("serving on ")


def main() -> int:
    from repro.service.client import ServiceClient
    from repro.service.schemas import CostResult, cost_table

    server, url = start_server()
    print(f"server up at {url}", flush=True)
    try:
        client = ServiceClient(url)

        health = client.health()
        check(health["status"] == "ok", "healthz answers ok")
        check(bool(health["registry_hash"]), "healthz reports a registry hash")

        for label, args, body in (
            ("default pricing", COST_ARGS, COST_BODY),
            ("poisson/450mm overrides", OVERRIDE_ARGS, OVERRIDE_BODY),
        ):
            envelope = client._json("POST", "/v1/cost", body)
            rendered = cost_table(
                CostResult.from_dict(envelope["result"])
            ).render()
            cli_stdout = run_cli(args).strip()
            check(rendered == cli_stdout,
                  f"/v1/cost byte-identical to `repro cost` ({label})")
            check(envelope["registry_hash"] == health["registry_hash"],
                  f"/v1/cost stamps the registry generation ({label})")

        repeat = client._json("POST", "/v1/cost", COST_BODY)
        check(repeat["cached"] is True, "identical repeat is a cache hit")

        result = client.scenario(SCENARIO)
        with tempfile.TemporaryDirectory() as workdir:
            path = os.path.join(workdir, "scenario.json")
            with open(path, "w") as handle:
                json.dump(SCENARIO, handle)
            cli_out = run_cli(["run", path])
        _, _, cli_body = cli_out.partition("\n\n")
        check(cli_body.strip() == result.render().strip(),
              "/v1/scenario matches `repro run` study-for-study")

        events = list(client.scenario_events(SCENARIO))
        check(events[0]["event"] == "scenario"
              and events[-1]["event"] == "end",
              "scenario stream is framed scenario..end")
        streamed = [e["text"] for e in events if e["event"] == "study"]
        check(streamed == [s.text for s in result.studies],
              "streamed studies identical to the buffered response")

        server.send_signal(signal.SIGINT)
        check(server.wait(timeout=30) == 0, "SIGINT shuts the server down")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)

    print(f"\nservice smoke OK: {len(CHECKS)} checks passed")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, SRC)
    sys.exit(main())
