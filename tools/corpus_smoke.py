#!/usr/bin/env python
"""Kill-and-resume smoke proof for the corpus runner (CI-executed).

The robustness contract under test (ISSUE 6 acceptance criteria):

1. a corpus run SIGKILLed mid-flight leaves a parseable manifest that
   reveals the interruption;
2. re-invoking the same run completes, serving every already-finished
   (spec-hash, registry-hash) unit from the store with **zero
   recomputation**;
3. the store contents end up **bit-identical** to an uninterrupted
   reference run;
4. injected worker crashes are retried with backoff and recorded in
   the manifest without aborting the corpus.

Run from the repo root: ``PYTHONPATH=src python tools/corpus_smoke.py``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

# Import-time side effects are limited to these constants so the module
# stays traversable by tooling (``repro lint``, future import-based
# checks); subprocesses get SRC on PYTHONPATH via ``run_cli``.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

CORPUS = {
    "corpus": "smoke",
    "template": {
        "scenario": "smoke-{node}-{area}",
        "studies": [
            {
                "kind": "partition_sweep",
                "name": "sweep",
                "module_area": "$area",
                "node": "$node",
                "technology": "mcm",
                "chiplet_counts": [1, 2, 3],
            }
        ],
    },
    "axes": {"node": ["7nm", "14nm"], "area": [150, 350, 550]},
}

CHECKS: list[str] = []


def check(condition: bool, label: str) -> None:
    CHECKS.append(("ok  " if condition else "FAIL") + " " + label)
    print(CHECKS[-1], flush=True)
    if not condition:
        print("\n".join(CHECKS))
        sys.exit(1)


def run_cli(args: list[str], env: "dict | None" = None, **kwargs):
    full_env = dict(os.environ)
    full_env["PYTHONPATH"] = SRC + os.pathsep + full_env.get("PYTHONPATH", "")
    full_env.update(env or {})
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=full_env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        **kwargs,
    )


def load_manifest(store: str) -> dict:
    path = os.path.join(store, "manifests", "smoke.json")
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def object_files(store: str) -> dict[str, bytes]:
    entries: dict[str, bytes] = {}
    objects = os.path.join(store, "objects")
    for directory, _dirs, files in os.walk(objects):
        for name in files:
            path = os.path.join(directory, name)
            with open(path, "rb") as handle:
                entries[os.path.relpath(path, objects)] = handle.read()
    return entries


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="corpus-smoke-")
    corpus_path = os.path.join(tmp, "corpus.json")
    with open(corpus_path, "w", encoding="utf-8") as handle:
        json.dump(CORPUS, handle)
    store_ref = os.path.join(tmp, "store-ref")
    store_kill = os.path.join(tmp, "store-kill")
    store_crash = os.path.join(tmp, "store-crash")

    # --- reference: one uninterrupted run --------------------------------
    result = run_cli(["corpus", "run", corpus_path, "--store", store_ref,
                      "--workers", "1"])
    check(result.returncode == 0, f"reference run exits 0 (got {result.returncode})")
    reference_objects = object_files(store_ref)
    check(len(reference_objects) == 6, "reference run stored 6 entries")

    # --- SIGKILL mid-run --------------------------------------------------
    # A per-unit delay slows each study so the kill lands mid-corpus.
    env = {
        "REPRO_CORPUS_FAULTS": json.dumps({"delay": {"seconds": 0.8}}),
    }
    full_env = dict(os.environ)
    full_env["PYTHONPATH"] = SRC + os.pathsep + full_env.get("PYTHONPATH", "")
    full_env.update(env)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "corpus", "run", corpus_path,
         "--store", store_kill, "--workers", "1", "--timeout", "60"],
        env=full_env,
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )
    manifest_file = os.path.join(store_kill, "manifests", "smoke.json")
    deadline = time.time() + 120
    completed_before_kill: list[str] = []
    while time.time() < deadline:
        try:
            manifest = load_manifest(store_kill)
        except (OSError, json.JSONDecodeError):
            time.sleep(0.05)
            continue
        completed_before_kill = [
            unit_id
            for unit_id, record in manifest.get("units", {}).items()
            if record["status"] == "completed"
        ]
        if 1 <= len(completed_before_kill) <= 4:
            break
        time.sleep(0.05)
    check(bool(completed_before_kill), "some units completed before the kill")
    check(len(completed_before_kill) < 6, "kill lands mid-corpus, not after it")
    os.killpg(os.getpgid(process.pid), signal.SIGKILL)
    process.wait()
    check(process.returncode == -signal.SIGKILL, "runner died by SIGKILL")

    manifest = load_manifest(store_kill)
    check(not manifest["finished"], "killed manifest is not marked finished")
    unfinished = [
        unit_id
        for unit_id, record in manifest["units"].items()
        if record["status"] in ("pending", "running")
    ]
    check(bool(unfinished), "killed manifest reports unfinished units")
    check(manifest_file == os.path.join(store_kill, "manifests", "smoke.json"),
          "manifest lives in the store")

    # --- resume -----------------------------------------------------------
    result = run_cli(["corpus", "run", corpus_path, "--store", store_kill,
                      "--workers", "1"])
    check(result.returncode == 0, f"resume exits 0 (got {result.returncode})")
    check("previous run was interrupted" in result.stdout,
          "resume reports the interruption")
    manifest = load_manifest(store_kill)
    check(manifest["interrupted_previous_run"],
          "resume manifest records interrupted_previous_run")
    check(manifest["finished"], "resume manifest is finished")
    served = [
        unit_id
        for unit_id, record in manifest["units"].items()
        if record["status"] == "completed" and record["source"] == "store"
    ]
    for unit_id in completed_before_kill:
        check(unit_id in served,
              f"{unit_id} served from the store (zero recomputation)")
    resumed_objects = object_files(store_kill)
    check(resumed_objects == reference_objects,
          "store bit-identical to the uninterrupted reference run")

    # --- injected crash: retried with backoff, corpus completes -----------
    state = os.path.join(tmp, "fault-state")
    result = run_cli(
        ["corpus", "run", corpus_path, "--store", store_crash,
         "--workers", "1", "--backoff", "0.05"],
        env={
            "REPRO_CORPUS_FAULTS": json.dumps(
                {"crash": {"match": "smoke-7nm-150/sweep", "times": 2}}
            ),
            "REPRO_CORPUS_FAULT_STATE": state,
        },
    )
    check(result.returncode == 0,
          f"crash-injected corpus still completes (got {result.returncode})")
    manifest = load_manifest(store_crash)
    crashed = manifest["units"]["smoke-7nm-150/sweep"]
    check(crashed["status"] == "completed" and crashed["attempts"] == 3,
          "crashed unit retried twice with backoff, then completed")
    check(object_files(store_crash) == reference_objects,
          "crash-retried store bit-identical to the reference run")

    print(f"\ncorpus smoke: all {len(CHECKS)} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
