"""Docs check: documented commands and examples must actually run.

Two rot-prone surfaces, both executed for real:

* **Example scenarios** — every ``examples/*.json`` document runs
  end-to-end via the documented command, ``python -m repro run FILE``
  (subprocess, so the CLI surface is covered too), inside a temporary
  working directory so scenario-declared sinks never pollute the repo.
* **README snippets** — every fenced ``python`` block in README.md is
  executed (each in a fresh namespace, doctest-style), and every
  ``python -m repro ...`` line inside fenced ``bash`` blocks runs as a
  subprocess.

Run locally (or in CI — see .github/workflows/ci.yml)::

    PYTHONPATH=src python tools/check_docs.py

Exit status 0 means every documented command works; the first failure
prints the offending snippet/scenario and exits 1.
"""

from __future__ import annotations

import glob
import json
import os
import re
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

#: Matches fenced code blocks, capturing (language, body).
_FENCE = re.compile(r"```(\w+)\n(.*?)```", re.DOTALL)


def _subprocess_env() -> dict:
    env = dict(os.environ)
    path = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = SRC + (os.pathsep + path if path else "")
    return env


def _run_cli(arguments: list[str], cwd: str, label: str) -> list[str]:
    completed = subprocess.run(
        [sys.executable, *arguments],
        cwd=cwd,
        env=_subprocess_env(),
        capture_output=True,
        text=True,
    )
    if completed.returncode != 0:
        return [
            f"{label}: `python {' '.join(arguments)}` exited "
            f"{completed.returncode}\n{completed.stderr.strip()}"
        ]
    return []


def check_example_scenarios() -> list[str]:
    """Run every examples/*.json through its documented command.

    Scenario documents go through ``python -m repro run``; corpus
    documents (top-level ``"corpus"`` key) through
    ``python -m repro corpus run`` against a scratch store.
    """
    failures: list[str] = []
    scenarios = sorted(glob.glob(os.path.join(REPO_ROOT, "examples", "*.json")))
    if not scenarios:
        return ["examples/: no *.json scenarios found"]
    with tempfile.TemporaryDirectory() as workdir:
        for path in scenarios:
            name = os.path.relpath(path, REPO_ROOT)
            with open(path, "r", encoding="utf-8") as handle:
                is_corpus = "corpus" in json.load(handle)
            if is_corpus:
                print(f"  corpus run {name}")
                arguments = [
                    "-m", "repro", "corpus", "run", path,
                    "--store", os.path.join(workdir, "docs-check-store"),
                ]
            else:
                print(f"  run {name}")
                arguments = ["-m", "repro", "run", path]
            failures += _run_cli(arguments, workdir, name)
    return failures


def _fenced_blocks(markdown_path: str) -> list[tuple[str, str]]:
    with open(markdown_path, "r", encoding="utf-8") as handle:
        return _FENCE.findall(handle.read())


def check_readme_snippets() -> list[str]:
    """Execute README.md's python blocks and ``python -m repro`` lines."""
    failures: list[str] = []
    readme = os.path.join(REPO_ROOT, "README.md")
    if SRC not in sys.path:
        sys.path.insert(0, SRC)
    with tempfile.TemporaryDirectory() as workdir:
        for language, body in _fenced_blocks(readme):
            if language == "python":
                print(f"  exec README python block ({body.splitlines()[0]!r} ...)")
                try:
                    exec(compile(body, readme, "exec"), {"__name__": "__docs__"})
                except Exception as error:  # noqa: BLE001 - report, don't crash
                    failures.append(f"README python block failed: {error!r}\n{body}")
            elif language == "bash":
                for line in body.splitlines():
                    command = line.split("#", 1)[0].strip()
                    if not command.startswith(
                        ("python -m repro", "PYTHONPATH=src python -m repro")
                    ):
                        continue
                    # Commands run from a scratch directory (sink output
                    # must not pollute the repo), so repo-relative paths
                    # in the documented command line become absolute.
                    arguments = [
                        os.path.join(REPO_ROOT, token)
                        if token.startswith(("examples/", "benchmarks/"))
                        or token in ("src", "tools", "benchmarks",
                                     "analysis-baseline.json")
                        else token
                        for token in command.split()
                        if token != "PYTHONPATH=src"
                    ][1:]
                    print(f"  run README command: {command}")
                    failures += _run_cli(arguments, workdir, "README bash block")
    return failures


#: Matches a docs/ANALYSIS.md rule-table row: ``| `rule-id` | ...``.
_RULE_ROW = re.compile(r"^\|\s*`([a-z0-9-]+)`\s*\|", re.MULTILINE)


def check_analysis_rule_table() -> list[str]:
    """The docs/ANALYSIS.md rule table must match the live registry."""
    if SRC not in sys.path:
        sys.path.insert(0, SRC)
    from repro.analysis import all_rule_ids

    doc = os.path.join(REPO_ROOT, "docs", "ANALYSIS.md")
    with open(doc, "r", encoding="utf-8") as handle:
        documented = set(_RULE_ROW.findall(handle.read()))
    registered = set(all_rule_ids())
    failures = []
    if missing := sorted(registered - documented):
        failures.append(
            f"docs/ANALYSIS.md: registered rules missing from the "
            f"rule table: {missing}"
        )
    if stale := sorted(documented - registered):
        failures.append(
            f"docs/ANALYSIS.md: rule table documents unregistered "
            f"rules: {stale}"
        )
    if not failures:
        print(f"  rule table matches registry ({len(registered)} rules)")
    return failures


def main() -> int:
    failures = []
    print("checking example scenarios ...")
    failures += check_example_scenarios()
    print("checking README snippets ...")
    failures += check_readme_snippets()
    print("checking docs/ANALYSIS.md rule table ...")
    failures += check_analysis_rule_table()
    if failures:
        print(f"\n{len(failures)} docs check(s) FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"- {failure}\n", file=sys.stderr)
        return 1
    print("docs check OK: every example scenario and README snippet runs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
